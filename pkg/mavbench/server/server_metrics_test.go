package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"mavbench/internal/core"
)

// scrape fetches /metrics and returns the exposition text.
func scrape(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("metrics content type = %q", ct)
	}
	buf, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(buf)
}

// TestMetricsEndpoint pins the observability surface the issue demands: after
// real traffic, /metrics exposes request counts by endpoint and status,
// request latency histograms, per-tenant queue depth, worker health gauges
// and store hit/miss counters — in deterministic Prometheus text format.
func TestMetricsEndpoint(t *testing.T) {
	wlName := uniqueWorkload("svc_metrics")
	core.Register(&serviceWorkload{name: wlName})
	srv := New(Config{Workers: 2, Tenants: []TenantConfig{
		{Name: "obs", APIKey: "key-o", MaxActiveCampaigns: 4},
	}})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	// Drive traffic: one campaign run twice (the repeat hits the store), one
	// rejected submission, one 404.
	body := specBody(wlName, 1)
	for i := 0; i < 2; i++ {
		resp := submitAs(t, ts, "key-o", body)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d = %d", i, resp.StatusCode)
		}
		var ack submitResponse
		mustDecode(t, resp, &ack)
		results := collectResults(t, ts.URL, ack.ID)
		if len(results) != 1 || !results[0].OK() {
			t.Fatalf("campaign %d results = %+v", i, results)
		}
		if i == 1 && !results[0].Cached {
			t.Error("repeated spec not served from store")
		}
	}
	denied := submitAs(t, ts, "bad-key", body)
	denied.Body.Close()
	nf, err := http.Get(ts.URL + "/v1/campaigns/cdeadbeef")
	if err != nil {
		t.Fatal(err)
	}
	nf.Body.Close()

	text := scrape(t, ts)
	for _, want := range []string{
		`mavbench_http_requests_total{endpoint="campaigns",code="202"} 2`,
		`mavbench_http_requests_total{endpoint="campaigns",code="403"} 1`,
		`mavbench_http_requests_total{endpoint="campaign_status",code="404"} 1`,
		`mavbench_http_requests_total{endpoint="campaign_results",code="200"} 2`,
		`mavbench_http_request_duration_seconds_count{endpoint="campaigns"} 3`,
		`# TYPE mavbench_http_request_duration_seconds histogram`,
		`# TYPE mavbench_dispatch_duration_seconds histogram`,
		`mavbench_tenant_active_campaigns{tenant="obs"} 0`,
		`mavbench_tenant_queued_specs{tenant="obs"} 0`,
		`mavbench_campaigns_total{tenant="obs"} 2`,
		`mavbench_submissions_rejected_total{code="unknown_api_key"} 1`,
		`mavbench_store_hits_total 1`,
		`mavbench_workers_registered 0`,
		`mavbench_workers_healthy 0`,
		`mavbench_workers_dispatchable 0`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	if !strings.Contains(text, "mavbench_store_misses_total 1") {
		t.Errorf("store misses series wrong:\n%s", grepMetric(text, "mavbench_store_misses_total"))
	}
}

// TestMetricsQueueDepthTracksBacklog watches the per-tenant gauges move: a
// gated campaign holds queue depth and active count up until it completes.
func TestMetricsQueueDepthTracksBacklog(t *testing.T) {
	gated := &serviceWorkload{name: uniqueWorkload("svc_metrics_gate"), gate: make(chan struct{})}
	core.Register(gated)
	srv := New(Config{Workers: 1, Tenants: []TenantConfig{
		{Name: "depth", APIKey: "key-d"},
	}})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	resp := submitAs(t, ts, "key-d", specBody(gated.name, 1, 2, 3))
	var ack submitResponse
	mustDecode(t, resp, &ack)

	text := scrape(t, ts)
	if !strings.Contains(text, `mavbench_tenant_active_campaigns{tenant="depth"} 1`) {
		t.Errorf("active gauge:\n%s", grepMetric(text, "mavbench_tenant_active_campaigns"))
	}
	if !strings.Contains(text, `mavbench_tenant_queued_specs{tenant="depth"} 3`) {
		t.Errorf("queue depth gauge:\n%s", grepMetric(text, "mavbench_tenant_queued_specs"))
	}

	close(gated.gate)
	collectResults(t, ts.URL, ack.ID)
	text = scrape(t, ts)
	if !strings.Contains(text, `mavbench_tenant_active_campaigns{tenant="depth"} 0`) ||
		!strings.Contains(text, `mavbench_tenant_queued_specs{tenant="depth"} 0`) {
		t.Errorf("gauges not released after completion:\n%s%s",
			grepMetric(text, "mavbench_tenant_active_campaigns"), grepMetric(text, "mavbench_tenant_queued_specs"))
	}
}

// TestRequestIDPropagation pins the request-id envelope: the server assigns
// an id when the client sends none and echoes a client-supplied one, on every
// endpoint.
func TestRequestIDPropagation(t *testing.T) {
	ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/workloads")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if rid := resp.Header.Get("X-Request-Id"); rid == "" {
		t.Error("server assigned no request id")
	}

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/workloads", nil)
	req.Header.Set("X-Request-Id", "rid-12345")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if rid := resp.Header.Get("X-Request-Id"); rid != "rid-12345" {
		t.Errorf("propagated request id = %q, want rid-12345", rid)
	}
}

// grepMetric returns the lines of one metric family (for failure messages).
func grepMetric(text, name string) string {
	var b strings.Builder
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, name) {
			b.WriteString(line)
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// mustDecode decodes a JSON response body, failing the test on error.
func mustDecode(t *testing.T, resp *http.Response, v any) {
	t.Helper()
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}
