package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"mavbench/pkg/mavbench"
)

// Journal is the server's write-ahead log of campaign intent: one NDJSON file
// per campaign under a directory, recording the submitted specs and each
// spec's completion. A coordinator killed mid-campaign replays the journal on
// restart (see Recover) and resumes every unfinished campaign; because specs
// are deterministic and completed results live in the content-addressed
// store, the resumed campaign's results are bit-identical to an uninterrupted
// run.
//
// File layout (<dir>/<campaign-id>.journal):
//
//	{"id":"c…","tenant":"team-a","priority":2,"specs":[…]}   header, written at submission
//	{"done":4}                                               spec 4 completed
//	{"done":0}
//	{"finished":true}                                        terminal marker
//
// Every line is appended with a single O_APPEND write followed by fsync, so a
// crash can lose at most the line being written; Recover tolerates a
// truncated final line. Finished journals are deleted — the directory holds
// exactly the campaigns a restart must resume.
type Journal struct {
	dir string

	mu   sync.Mutex
	open map[string]*os.File
}

// OpenJournal opens (creating if needed) a journal directory.
func OpenJournal(dir string) (*Journal, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("creating journal dir: %w", err)
	}
	return &Journal{dir: dir, open: map[string]*os.File{}}, nil
}

// Dir returns the journal directory.
func (j *Journal) Dir() string { return j.dir }

// journalHeader is a journal file's first line.
type journalHeader struct {
	ID       string          `json:"id"`
	Tenant   string          `json:"tenant,omitempty"`
	Priority int             `json:"priority,omitempty"`
	Specs    []mavbench.Spec `json:"specs"`
}

// journalMark is every subsequent line: a completion or the terminal marker.
type journalMark struct {
	Done     *int `json:"done,omitempty"`
	Finished bool `json:"finished,omitempty"`
}

func (j *Journal) path(id string) string {
	return filepath.Join(j.dir, id+".journal")
}

// Begin journals a campaign's intent before any spec runs. It must be called
// (and synced) before the submission is acknowledged, so an acknowledged
// campaign is guaranteed to survive a crash.
func (j *Journal) Begin(id, tenant string, priority int, specs []mavbench.Spec) error {
	line, err := json.Marshal(journalHeader{ID: id, Tenant: tenant, Priority: priority, Specs: specs})
	if err != nil {
		return fmt.Errorf("journal %s: encoding header: %w", id, err)
	}
	f, err := os.OpenFile(j.path(id), os.O_CREATE|os.O_WRONLY|os.O_APPEND|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("journal %s: %w", id, err)
	}
	j.mu.Lock()
	j.open[id] = f
	j.mu.Unlock()
	return j.append(id, line)
}

// MarkDone journals one spec's completion (by its index in the header's spec
// list).
func (j *Journal) MarkDone(id string, index int) error {
	line, _ := json.Marshal(journalMark{Done: &index})
	return j.append(id, line)
}

// Finish journals the terminal marker and deletes the file — the campaign no
// longer needs recovery.
func (j *Journal) Finish(id string) error {
	line, _ := json.Marshal(journalMark{Finished: true})
	if err := j.append(id, line); err != nil {
		return err
	}
	j.mu.Lock()
	f := j.open[id]
	delete(j.open, id)
	j.mu.Unlock()
	if f != nil {
		_ = f.Close()
	}
	return os.Remove(j.path(id))
}

// append writes one line (newline added) as a single write + fsync. The
// journal mutex serializes appends across campaigns so interleaved lines
// cannot shear.
func (j *Journal) append(id string, line []byte) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	f := j.open[id]
	if f == nil {
		// Resumed campaign whose file was recovered but never re-opened, or a
		// late completion after Finish: reopen (without O_EXCL) or drop.
		var err error
		f, err = os.OpenFile(j.path(id), os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			if os.IsNotExist(err) {
				return nil // finished and removed; nothing to record
			}
			return fmt.Errorf("journal %s: %w", id, err)
		}
		j.open[id] = f
	}
	if _, err := f.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("journal %s: append: %w", id, err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("journal %s: sync: %w", id, err)
	}
	return nil
}

// Close closes every open journal file (the files remain for Recover).
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	for id, f := range j.open {
		_ = f.Close()
		delete(j.open, id)
	}
	return nil
}

// RecoveredCampaign is one unfinished campaign found by Recover.
type RecoveredCampaign struct {
	ID       string
	Tenant   string
	Priority int
	Specs    []mavbench.Spec
	// Done[i] reports whether spec i completed before the crash. Completed
	// specs' results are expected in the content-addressed store; either way
	// the resumed campaign re-submits every spec and determinism makes the
	// results identical.
	Done []bool
}

// Remaining counts the specs still to run.
func (rc *RecoveredCampaign) Remaining() int {
	n := 0
	for _, d := range rc.Done {
		if !d {
			n++
		}
	}
	return n
}

// Recover scans the journal directory and returns every unfinished campaign,
// oldest submission first (journal ids embed no ordering, so order is by file
// modification time, then name, for determinism). Corrupt or truncated final
// lines are tolerated — at worst one completion mark is forgotten, and the
// spec simply re-runs (idempotent via the result store). Files recording a
// finished campaign are deleted.
func (j *Journal) Recover() ([]RecoveredCampaign, error) {
	entries, err := os.ReadDir(j.dir)
	if err != nil {
		return nil, fmt.Errorf("reading journal dir: %w", err)
	}
	type cand struct {
		rc  RecoveredCampaign
		mod int64
	}
	var found []cand
	for _, ent := range entries {
		if ent.IsDir() || !strings.HasSuffix(ent.Name(), ".journal") {
			continue
		}
		path := filepath.Join(j.dir, ent.Name())
		buf, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("reading %s: %w", path, err)
		}
		rc, finished, ok := parseJournal(buf)
		if !ok || finished {
			// Unparseable header (torn write before the first sync returned —
			// the submission was never acknowledged) or already finished:
			// nothing to resume.
			_ = os.Remove(path)
			continue
		}
		info, _ := ent.Info()
		var mod int64
		if info != nil {
			mod = info.ModTime().UnixNano()
		}
		found = append(found, cand{rc: rc, mod: mod})
	}
	sort.Slice(found, func(a, b int) bool {
		if found[a].mod != found[b].mod {
			return found[a].mod < found[b].mod
		}
		return found[a].rc.ID < found[b].rc.ID
	})
	out := make([]RecoveredCampaign, len(found))
	for i, c := range found {
		out[i] = c.rc
	}
	return out, nil
}

// parseJournal decodes one journal file, tolerating a truncated final line.
func parseJournal(buf []byte) (rc RecoveredCampaign, finished, ok bool) {
	lines := bytes.Split(buf, []byte{'\n'})
	var hdr journalHeader
	if len(lines) == 0 || json.Unmarshal(lines[0], &hdr) != nil || hdr.ID == "" || len(hdr.Specs) == 0 {
		return rc, false, false
	}
	rc = RecoveredCampaign{
		ID: hdr.ID, Tenant: hdr.Tenant, Priority: hdr.Priority,
		Specs: hdr.Specs, Done: make([]bool, len(hdr.Specs)),
	}
	for _, line := range lines[1:] {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var m journalMark
		if json.Unmarshal(line, &m) != nil {
			continue // truncated tail — forget at most this one mark
		}
		if m.Finished {
			finished = true
		}
		if m.Done != nil && *m.Done >= 0 && *m.Done < len(rc.Done) {
			rc.Done[*m.Done] = true
		}
	}
	return rc, finished, true
}
