package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"mavbench/internal/core"
)

// twoTenants is the roster most tenancy tests run under.
func twoTenants() []TenantConfig {
	return []TenantConfig{
		{Name: "team-a", APIKey: "key-a", MaxActiveCampaigns: 2, MaxQueuedSpecs: 8, MaxPriority: 4, Weight: 2},
		{Name: "team-b", APIKey: "key-b", MaxActiveCampaigns: 1, MaxQueuedSpecs: 4},
	}
}

// submitAs posts a campaign with an API key and returns the raw response.
func submitAs(t *testing.T, ts *httptest.Server, apiKey, body string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/campaigns", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if apiKey != "" {
		req.Header.Set("X-API-Key", apiKey)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// decodeTypedError reads the typed admission-error contract off a response.
func decodeTypedError(t *testing.T, resp *http.Response) errorResponse {
	t.Helper()
	defer resp.Body.Close()
	var e errorResponse
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatalf("admission error body is not JSON: %v", err)
	}
	if e.Error == "" {
		t.Error("admission error has empty message")
	}
	return e
}

func specBody(workload string, seeds ...int) string {
	var parts []string
	for _, seed := range seeds {
		parts = append(parts, fmt.Sprintf(`{"workload": %q, "seed": %d, "max_mission_time_s": 30}`, workload, seed))
	}
	return `{"specs": [` + strings.Join(parts, ",") + `]}`
}

// TestTenantAuthenticationRequired pins the 403 contract: a tenanted server
// rejects keyless and unknown-key submissions with machine-readable codes,
// and accepts the configured key (echoing the tenant in the ack).
func TestTenantAuthenticationRequired(t *testing.T) {
	wlName := uniqueWorkload("svc_tenant_auth")
	core.Register(&serviceWorkload{name: wlName})
	ts := newTestServer(t, Config{Workers: 2, Tenants: twoTenants()})

	missing := submitAs(t, ts, "", specBody(wlName, 1))
	if missing.StatusCode != http.StatusForbidden {
		t.Errorf("keyless submit = %d, want 403", missing.StatusCode)
	}
	if e := decodeTypedError(t, missing); e.Code != "missing_api_key" {
		t.Errorf("keyless code = %q, want missing_api_key", e.Code)
	}

	unknown := submitAs(t, ts, "key-nope", specBody(wlName, 1))
	if unknown.StatusCode != http.StatusForbidden {
		t.Errorf("unknown-key submit = %d, want 403", unknown.StatusCode)
	}
	if e := decodeTypedError(t, unknown); e.Code != "unknown_api_key" {
		t.Errorf("unknown-key code = %q, want unknown_api_key", e.Code)
	}

	good := submitAs(t, ts, "key-a", specBody(wlName, 1))
	defer good.Body.Close()
	if good.StatusCode != http.StatusAccepted {
		t.Fatalf("authorized submit = %d, want 202", good.StatusCode)
	}
	var ack submitResponse
	if err := json.NewDecoder(good.Body).Decode(&ack); err != nil {
		t.Fatal(err)
	}
	if ack.Tenant != "team-a" {
		t.Errorf("ack tenant = %q, want team-a", ack.Tenant)
	}
	// The other endpoints stay open: tenancy guards submission, not reads.
	var wr workloadsResponse
	getJSON(t, ts, "/v1/workloads", &wr)
}

// TestTenantConcurrencyQuota pins the active-campaign quota: the limit
// rejects the excess submission with 429 quota_exceeded, and a finished
// campaign frees its slot.
func TestTenantConcurrencyQuota(t *testing.T) {
	gated := &serviceWorkload{name: uniqueWorkload("svc_tenant_quota"), gate: make(chan struct{})}
	core.Register(gated)
	ts := newTestServer(t, Config{Workers: 1, Tenants: twoTenants()})

	first := submitAs(t, ts, "key-b", specBody(gated.name, 1))
	if first.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit = %d", first.StatusCode)
	}
	var ack submitResponse
	_ = json.NewDecoder(first.Body).Decode(&ack)
	first.Body.Close()

	over := submitAs(t, ts, "key-b", specBody(gated.name, 2))
	if over.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota submit = %d, want 429", over.StatusCode)
	}
	if e := decodeTypedError(t, over); e.Code != "quota_exceeded" {
		t.Errorf("over-quota code = %q, want quota_exceeded", e.Code)
	}
	// team-a's quota is separate: its submissions are unaffected.
	other := submitAs(t, ts, "key-a", specBody(gated.name, 3))
	if other.StatusCode != http.StatusAccepted {
		t.Errorf("other tenant blocked by team-b's quota: %d", other.StatusCode)
	}
	other.Body.Close()

	close(gated.gate)
	collectResults(t, ts.URL, ack.ID) // blocks until the campaign finishes
	waitFor(t, time.Second, func() bool {
		resp := submitAs(t, ts, "key-b", specBody(gated.name, 4))
		defer resp.Body.Close()
		return resp.StatusCode == http.StatusAccepted
	}, "quota slot never freed after the campaign finished")
}

// TestTenantBacklogQuota pins the queued-spec quota: total outstanding specs
// across a tenant's campaigns cannot exceed max_queued_specs.
func TestTenantBacklogQuota(t *testing.T) {
	gated := &serviceWorkload{name: uniqueWorkload("svc_tenant_backlog"), gate: make(chan struct{})}
	core.Register(gated)
	t.Cleanup(func() { close(gated.gate) })
	ts := newTestServer(t, Config{Workers: 1, Tenants: twoTenants()})

	// team-b allows 4 queued specs: a 3-spec campaign fits, a second 3-spec
	// campaign would make 6 and is refused even though the concurrency quota
	// for this tenant is not the binding limit here (use team-a: 2 active, 8
	// queued — submit 2 campaigns of 5: second would be 10 > 8).
	first := submitAs(t, ts, "key-a", specBody(gated.name, 1, 2, 3, 4, 5))
	if first.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit = %d", first.StatusCode)
	}
	first.Body.Close()
	second := submitAs(t, ts, "key-a", specBody(gated.name, 6, 7, 8, 9, 10))
	if second.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("backlog-busting submit = %d, want 429", second.StatusCode)
	}
	if e := decodeTypedError(t, second); e.Code != "quota_exceeded" || !strings.Contains(e.Error, "queued") {
		t.Errorf("backlog rejection = %+v", e)
	}
	// A smaller campaign still fits under the backlog cap.
	third := submitAs(t, ts, "key-a", specBody(gated.name, 11, 12, 13))
	if third.StatusCode != http.StatusAccepted {
		t.Errorf("fitting submit = %d, want 202", third.StatusCode)
	}
	third.Body.Close()
}

// TestTenantQuotaUnderConcurrentSubmission hammers one tenant's concurrency
// quota from many goroutines: exactly quota-many submissions may win, no
// matter how the requests interleave. Run under -race this also pins the
// admission lock.
func TestTenantQuotaUnderConcurrentSubmission(t *testing.T) {
	gated := &serviceWorkload{name: uniqueWorkload("svc_tenant_race"), gate: make(chan struct{})}
	core.Register(gated)
	t.Cleanup(func() { close(gated.gate) })
	roster := []TenantConfig{{Name: "racer", APIKey: "key-r", MaxActiveCampaigns: 3}}
	ts := newTestServer(t, Config{Workers: 1, Tenants: roster})

	const attempts = 24
	statuses := make([]int, attempts)
	var wg sync.WaitGroup
	wg.Add(attempts)
	for i := 0; i < attempts; i++ {
		go func(i int) {
			defer wg.Done()
			resp := submitAs(t, ts, "key-r", specBody(gated.name, i+1))
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			statuses[i] = resp.StatusCode
		}(i)
	}
	wg.Wait()
	accepted, rejected := 0, 0
	for _, st := range statuses {
		switch st {
		case http.StatusAccepted:
			accepted++
		case http.StatusTooManyRequests:
			rejected++
		default:
			t.Errorf("unexpected submit status %d", st)
		}
	}
	if accepted != 3 || rejected != attempts-3 {
		t.Errorf("concurrent admission let %d through (quota 3), rejected %d", accepted, rejected)
	}
}

// TestTenantRateLimit pins the 429 rate_limited contract: the token bucket
// admits the burst, then rejects with retry_after_s and a Retry-After header.
func TestTenantRateLimit(t *testing.T) {
	wlName := uniqueWorkload("svc_tenant_rate")
	core.Register(&serviceWorkload{name: wlName})
	roster := []TenantConfig{{Name: "slow", APIKey: "key-s", RatePerSec: 0.1, Burst: 2}}
	ts := newTestServer(t, Config{Workers: 2, Tenants: roster})

	for i := 0; i < 2; i++ {
		resp := submitAs(t, ts, "key-s", specBody(wlName, i+1))
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("burst submission %d = %d", i, resp.StatusCode)
		}
		resp.Body.Close()
	}
	limited := submitAs(t, ts, "key-s", specBody(wlName, 3))
	if limited.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-rate submit = %d, want 429", limited.StatusCode)
	}
	retryAfter := limited.Header.Get("Retry-After")
	secs, err := strconv.Atoi(retryAfter)
	if err != nil || secs < 1 {
		t.Errorf("Retry-After = %q, want a positive integer", retryAfter)
	}
	e := decodeTypedError(t, limited)
	if e.Code != "rate_limited" || e.RetryAfterS <= 0 {
		t.Errorf("rate rejection = %+v", e)
	}
}

// TestTenantPriorityClamped pins the priority ceiling: a tenant asking for
// more priority than its max_priority gets the clamped value back.
func TestTenantPriorityClamped(t *testing.T) {
	wlName := uniqueWorkload("svc_tenant_prio")
	core.Register(&serviceWorkload{name: wlName})
	ts := newTestServer(t, Config{Workers: 2, Tenants: twoTenants()})

	body := fmt.Sprintf(`{"specs": [{"workload": %q, "seed": 1, "max_mission_time_s": 30}], "priority": 9}`, wlName)
	resp := submitAs(t, ts, "key-a", body) // team-a: max_priority 4
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d", resp.StatusCode)
	}
	var ack submitResponse
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		t.Fatal(err)
	}
	if ack.Priority != 4 {
		t.Errorf("ack priority = %d, want clamped 4", ack.Priority)
	}
	var status statusResponse
	getJSON(t, ts, "/v1/campaigns/"+ack.ID, &status)
	if status.Priority != 4 || status.Tenant != "team-a" {
		t.Errorf("status = %+v", status)
	}
}

// TestLoadTenants pins the roster file format and its validation.
func TestLoadTenants(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		t.Helper()
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	good := write("good.json", `{"tenants": [
		{"name": "a", "api_key": "ka", "max_active_campaigns": 2},
		{"name": "b", "api_key": "kb", "rate_per_sec": 1.5}
	]}`)
	ts, err := LoadTenants(good)
	if err != nil || len(ts) != 2 || ts[0].Name != "a" || ts[1].RatePerSec != 1.5 {
		t.Fatalf("LoadTenants = %+v, %v", ts, err)
	}
	bare := write("bare.json", `[{"name": "solo", "api_key": "ks"}]`)
	if ts, err := LoadTenants(bare); err != nil || len(ts) != 1 {
		t.Fatalf("bare-array LoadTenants = %+v, %v", ts, err)
	}
	for name, content := range map[string]string{
		"noname.json": `[{"api_key": "k"}]`,
		"nokey.json":  `[{"name": "x"}]`,
		"dup.json":    `[{"name": "x", "api_key": "k"}, {"name": "x", "api_key": "k2"}]`,
		"dupkey.json": `[{"name": "x", "api_key": "k"}, {"name": "y", "api_key": "k"}]`,
		"junk.json":   `{"nope": true}`,
	} {
		if _, err := LoadTenants(write(name, content)); err == nil {
			t.Errorf("LoadTenants(%s) accepted invalid roster", name)
		}
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for {
		if cond() {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal(msg)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
