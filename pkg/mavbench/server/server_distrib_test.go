package server

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"mavbench/internal/core"
	"mavbench/pkg/mavbench"
	"mavbench/pkg/mavbench/distrib"
)

// TestRunEndpointStreamsBatchResults drives POST /v1/run, the synchronous
// batch endpoint fleet coordinators dispatch to: one NDJSON result per spec,
// invalid specs surfacing as failed results (not request rejections), exactly
// as the local engine reports them.
func TestRunEndpointStreamsBatchResults(t *testing.T) {
	core.Register(&serviceWorkload{name: "svc_run_batch"})
	ts := newTestServer(t, Config{Workers: 2})

	resp, err := http.Post(ts.URL+"/v1/run", "application/json", strings.NewReader(`{"specs": [
		{"workload": "svc_run_batch", "seed": 1, "max_mission_time_s": 30},
		{"workload": "no_such_workload"},
		{"workload": "svc_run_batch", "seed": 2, "max_mission_time_s": 30}
	]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("run content type = %q", ct)
	}
	byIndex := map[int]mavbench.Result{}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var res mavbench.Result
		if err := json.Unmarshal(sc.Bytes(), &res); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		byIndex[res.Index] = res
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(byIndex) != 3 {
		t.Fatalf("batch returned %d results, want 3", len(byIndex))
	}
	if !byIndex[0].OK() || !byIndex[2].OK() {
		t.Errorf("valid specs failed: %v / %v", byIndex[0].Err(), byIndex[2].Err())
	}
	if byIndex[1].OK() || !strings.Contains(byIndex[1].Error, "no_such_workload") {
		t.Errorf("invalid spec result = %+v", byIndex[1])
	}
}

func TestRunEndpointRejectsEmptyBatch(t *testing.T) {
	ts := newTestServer(t, Config{})
	resp, err := http.Post(ts.URL+"/v1/run", "application/json", strings.NewReader(`{"specs": []}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	assertJSONError(t, resp, http.StatusBadRequest)
}

// assertJSONError checks the uniform error contract: the given status, an
// application/json content type, and a non-empty {"error": ...} body.
func assertJSONError(t *testing.T, resp *http.Response, wantStatus int) string {
	t.Helper()
	if resp.StatusCode != wantStatus {
		t.Errorf("status = %d, want %d", resp.StatusCode, wantStatus)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("error content type = %q, want application/json", ct)
	}
	var body struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("error body is not JSON: %v", err)
	}
	if body.Error == "" {
		t.Error("error body has empty error message")
	}
	return body.Error
}

// TestWorkerRegistryEndpoints covers the fleet-membership surface: register,
// idempotent re-register, list, heartbeat, and deregister, with JSON errors
// for unknown ids.
func TestWorkerRegistryEndpoints(t *testing.T) {
	ts := newTestServer(t, Config{})

	register := func(url string) distrib.RegisterResponse {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/workers", "application/json", strings.NewReader(`{"url": "`+url+`"}`))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("register status = %d", resp.StatusCode)
		}
		var reg distrib.RegisterResponse
		if err := json.NewDecoder(resp.Body).Decode(&reg); err != nil {
			t.Fatal(err)
		}
		return reg
	}

	a := register("http://worker-a:8080")
	if a.ID == "" || a.HeartbeatIntervalS <= 0 {
		t.Fatalf("registration = %+v", a)
	}
	if b := register("http://worker-a:8080"); b.ID != a.ID {
		t.Errorf("re-registration minted new id %q (had %q)", b.ID, a.ID)
	}
	register("http://worker-b:8080")

	resp, err := http.Get(ts.URL + "/v1/workers")
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		Workers []distrib.WorkerStatus `json:"workers"`
		Healthy int                    `json:"healthy"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list.Workers) != 2 || list.Healthy != 2 {
		t.Fatalf("worker list = %+v", list)
	}

	hb, err := http.Post(ts.URL+"/v1/workers/"+a.ID+"/heartbeat", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	hb.Body.Close()
	if hb.StatusCode != http.StatusOK {
		t.Errorf("heartbeat status = %d", hb.StatusCode)
	}
	hbBad, err := http.Post(ts.URL+"/v1/workers/wdeadbeef/heartbeat", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	msg := assertJSONError(t, hbBad, http.StatusNotFound)
	hbBad.Body.Close()
	if !strings.Contains(msg, "re-register") {
		t.Errorf("unknown-worker heartbeat error %q does not tell the worker to re-register", msg)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/workers/"+a.ID, nil)
	del, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	del.Body.Close()
	if del.StatusCode != http.StatusOK {
		t.Errorf("deregister status = %d", del.StatusCode)
	}
	del2, err := http.DefaultClient.Do(req.Clone(req.Context()))
	if err != nil {
		t.Fatal(err)
	}
	assertJSONError(t, del2, http.StatusNotFound)
	del2.Body.Close()
}

// TestEveryErrorIsStructuredJSON pins the service-wide error contract:
// unknown campaign ids, unknown spec hashes, unknown routes and wrong
// methods all answer with the right status and a {"error": "..."} JSON body
// — never the mux's bare text.
func TestEveryErrorIsStructuredJSON(t *testing.T) {
	ts := newTestServer(t, Config{})
	cases := []struct {
		name, method, path string
		wantStatus         int
	}{
		{"unknown campaign", http.MethodGet, "/v1/campaigns/c0123456789abcde", http.StatusNotFound},
		{"unknown campaign results", http.MethodGet, "/v1/campaigns/c0123456789abcde/results", http.StatusNotFound},
		{"unknown spec hash", http.MethodGet, "/v1/specs/ffffffffffffffff", http.StatusNotFound},
		{"unknown route", http.MethodGet, "/v1/nope", http.StatusNotFound},
		{"root", http.MethodGet, "/", http.StatusNotFound},
		{"wrong method on campaigns", http.MethodGet, "/v1/campaigns", http.StatusMethodNotAllowed},
		{"wrong method on run", http.MethodGet, "/v1/run", http.StatusMethodNotAllowed},
		{"wrong method on workloads", http.MethodDelete, "/v1/workloads", http.StatusMethodNotAllowed},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := http.NewRequest(tc.method, ts.URL+tc.path, nil)
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			assertJSONError(t, resp, tc.wantStatus)
		})
	}
}

// TestFleetTokenGuardsWorkerRegistry pins the fleet trust boundary: with a
// FleetToken configured, registration, heartbeat and deregistration demand
// the bearer token and reject everything else with a 401 JSON error.
func TestFleetTokenGuardsWorkerRegistry(t *testing.T) {
	ts := newTestServer(t, Config{FleetToken: "sekrit"})

	post := func(path, token string) *http.Response {
		t.Helper()
		req, err := http.NewRequest(http.MethodPost, ts.URL+path, strings.NewReader(`{"url": "http://w:1"}`))
		if err != nil {
			t.Fatal(err)
		}
		if token != "" {
			req.Header.Set("Authorization", "Bearer "+token)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	noToken := post("/v1/workers", "")
	assertJSONError(t, noToken, http.StatusUnauthorized)
	noToken.Body.Close()
	badToken := post("/v1/workers", "wrong")
	assertJSONError(t, badToken, http.StatusUnauthorized)
	badToken.Body.Close()

	good := post("/v1/workers", "sekrit")
	defer good.Body.Close()
	if good.StatusCode != http.StatusOK {
		t.Fatalf("register with token = %d", good.StatusCode)
	}
	var reg distrib.RegisterResponse
	if err := json.NewDecoder(good.Body).Decode(&reg); err != nil {
		t.Fatal(err)
	}

	hbBad := post("/v1/workers/"+reg.ID+"/heartbeat", "")
	assertJSONError(t, hbBad, http.StatusUnauthorized)
	hbBad.Body.Close()
	hbGood := post("/v1/workers/"+reg.ID+"/heartbeat", "sekrit")
	hbGood.Body.Close()
	if hbGood.StatusCode != http.StatusOK {
		t.Errorf("heartbeat with token = %d", hbGood.StatusCode)
	}
}

// TestSubmittedCampaignShardsAcrossFleet is the service-level distributed
// path: workers register over HTTP, a campaign submitted to the coordinator
// streams back merged results identical to a local run, and both workers
// participate.
func TestSubmittedCampaignShardsAcrossFleet(t *testing.T) {
	core.Register(&serviceWorkload{name: "svc_fleet_shard"})

	worker1 := newTestServer(t, Config{Workers: 1})
	worker2 := newTestServer(t, Config{Workers: 1})
	coordSrv := New(Config{})
	coord := httptest.NewServer(coordSrv.Handler())
	t.Cleanup(coord.Close)
	for _, w := range []*httptest.Server{worker1, worker2} {
		resp, err := http.Post(coord.URL+"/v1/workers", "application/json", strings.NewReader(`{"url": "`+w.URL+`"}`))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("worker registration status = %d", resp.StatusCode)
		}
	}

	specJSON := `{"specs": [
		{"workload": "svc_fleet_shard", "seed": 1, "max_mission_time_s": 30},
		{"workload": "svc_fleet_shard", "seed": 2, "max_mission_time_s": 30},
		{"workload": "svc_fleet_shard", "seed": 3, "max_mission_time_s": 30},
		{"workload": "svc_fleet_shard", "seed": 4, "max_mission_time_s": 30}
	]}`
	ack := submitTo(t, coord.URL, specJSON)
	results := collectResults(t, coord.URL, ack.ID)
	if len(results) != 4 {
		t.Fatalf("fleet campaign returned %d results, want 4", len(results))
	}
	for _, res := range results {
		if !res.OK() {
			t.Errorf("spec %d failed: %v", res.Index, res.Err())
		}
	}
	for _, st := range coordSrv.Fleet().Workers() {
		if st.Dispatched == 0 {
			t.Errorf("worker %s never received a batch", st.URL)
		}
	}
}

// submitTo posts a campaign to an arbitrary base URL.
func submitTo(t *testing.T, baseURL, body string) submitResponse {
	t.Helper()
	resp, err := http.Post(baseURL+"/v1/campaigns", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d", resp.StatusCode)
	}
	var ack submitResponse
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		t.Fatal(err)
	}
	return ack
}
