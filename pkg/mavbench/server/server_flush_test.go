package server

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mavbench/internal/core"
	"mavbench/pkg/mavbench"
)

// flushRecorder is a ResponseWriter that separates flushed from unflushed
// bytes, so a test can assert that a streaming handler pushed everything it
// wrote to the client before returning (instead of leaving the tail sitting
// in the buffer until the connection closes).
type flushRecorder struct {
	header    http.Header
	status    int
	unflushed strings.Builder
	flushed   strings.Builder
}

func newFlushRecorder() *flushRecorder { return &flushRecorder{header: http.Header{}} }

func (f *flushRecorder) Header() http.Header { return f.header }

func (f *flushRecorder) WriteHeader(code int) { f.status = code }

func (f *flushRecorder) Write(b []byte) (int, error) { return f.unflushed.Write(b) }

func (f *flushRecorder) Flush() {
	f.flushed.WriteString(f.unflushed.String())
	f.unflushed.Reset()
}

// TestResultsStreamFlushesFinalRecordsBeforeReturn pins the done-path flush
// contract of GET /v1/campaigns/{id}/results: when the handler returns, every
// NDJSON record — including the last batch written just before the done check
// — must already have been flushed to the client.
func TestResultsStreamFlushesFinalRecordsBeforeReturn(t *testing.T) {
	core.Register(&serviceWorkload{name: "svc_flush_done"})
	srv := New(Config{Workers: 1})
	handler := srv.Handler()

	sub := httptest.NewRecorder()
	handler.ServeHTTP(sub, httptest.NewRequest(http.MethodPost, "/v1/campaigns",
		strings.NewReader(`{"specs": [{"workload": "svc_flush_done", "max_mission_time_s": 30}]}`)))
	if sub.Code != http.StatusAccepted {
		t.Fatalf("submit status = %d: %s", sub.Code, sub.Body.String())
	}
	var ack submitResponse
	if err := json.Unmarshal(sub.Body.Bytes(), &ack); err != nil {
		t.Fatal(err)
	}

	// Wait for the campaign to finish, so the results handler takes the
	// write-tail-then-done path in a single pass.
	deadline := time.Now().Add(30 * time.Second)
	for {
		st := httptest.NewRecorder()
		handler.ServeHTTP(st, httptest.NewRequest(http.MethodGet, "/v1/campaigns/"+ack.ID, nil))
		var status statusResponse
		if err := json.Unmarshal(st.Body.Bytes(), &status); err != nil {
			t.Fatalf("status decode: %v (%s)", err, st.Body.String())
		}
		if status.Done {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("campaign never completed")
		}
		time.Sleep(10 * time.Millisecond)
	}

	rec := newFlushRecorder()
	handler.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/campaigns/"+ack.ID+"/results", nil))

	if rec.unflushed.Len() != 0 {
		t.Fatalf("handler returned with %d unflushed bytes still buffered: %q",
			rec.unflushed.Len(), rec.unflushed.String())
	}
	sc := bufio.NewScanner(strings.NewReader(rec.flushed.String()))
	var records int
	for sc.Scan() {
		var res mavbench.Result
		if err := json.Unmarshal(sc.Bytes(), &res); err != nil {
			t.Fatalf("flushed line %d is not a Result: %v", records, err)
		}
		if !res.OK() {
			t.Fatalf("record %d failed: %v", records, res.Error)
		}
		records++
	}
	if records != 1 {
		t.Fatalf("flushed %d records, want 1", records)
	}
}

// TestRunBatchFlushesBeforeReturn pins the same contract for the worker-side
// POST /v1/run batch endpoint.
func TestRunBatchFlushesBeforeReturn(t *testing.T) {
	core.Register(&serviceWorkload{name: "svc_flush_run"})
	srv := New(Config{Workers: 1})
	handler := srv.Handler()

	rec := newFlushRecorder()
	handler.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/run",
		strings.NewReader(`{"specs": [{"workload": "svc_flush_run", "max_mission_time_s": 30}]}`)))

	if rec.unflushed.Len() != 0 {
		t.Fatalf("handler returned with %d unflushed bytes still buffered: %q",
			rec.unflushed.Len(), rec.unflushed.String())
	}
	var records int
	sc := bufio.NewScanner(strings.NewReader(rec.flushed.String()))
	for sc.Scan() {
		records++
	}
	if records != 1 {
		t.Fatalf("flushed %d records, want 1", records)
	}
}
