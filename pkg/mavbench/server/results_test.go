package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"mavbench/internal/core"
	"mavbench/pkg/mavbench"
	"mavbench/pkg/mavbench/resultdb"
)

// computeSweepBody builds a POST /v1/campaigns body that sweeps the compute
// axis over a fixed (workload, seed) pair — every spec shares one world.
func computeSweepBody(workload string, seed int, cores ...int) string {
	var parts []string
	for _, c := range cores {
		parts = append(parts, fmt.Sprintf(
			`{"workload": %q, "seed": %d, "cores": %d, "max_mission_time_s": 30}`, workload, seed, c))
	}
	return `{"specs": [` + strings.Join(parts, ",") + `]}`
}

// queryJSON fetches a URL and decodes its JSON body into out, returning the
// status code.
func queryJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: decoding body: %v", url, err)
		}
	}
	return resp.StatusCode
}

// TestQueryResultsEndToEnd pins the analytics surface: campaigns run against
// a segment store, and GET /v1/results filters them by workload and compute
// range, projects report metrics into flat rows, and rejects bad parameters.
func TestQueryResultsEndToEnd(t *testing.T) {
	wlName := uniqueWorkload("svc_query")
	core.Register(&serviceWorkload{name: wlName})
	store, err := resultdb.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	srv := New(Config{Workers: 2, Store: store})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	resp := submitAs(t, ts, "", computeSweepBody(wlName, 7, 1, 2, 4))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d", resp.StatusCode)
	}
	var ack submitResponse
	mustDecode(t, resp, &ack)
	if results := collectResults(t, ts.URL, ack.ID); len(results) != 3 {
		t.Fatalf("campaign produced %d results, want 3", len(results))
	}

	var all struct {
		Count   int               `json:"count"`
		Results []mavbench.Result `json:"results"`
	}
	if code := queryJSON(t, ts.URL+"/v1/results?workload="+wlName, &all); code != http.StatusOK {
		t.Fatalf("query status = %d", code)
	}
	if all.Count != 3 || len(all.Results) != 3 {
		t.Fatalf("workload query returned %d results, want 3", all.Count)
	}
	for _, res := range all.Results {
		if res.Spec.Workload != wlName || !res.OK() {
			t.Fatalf("query returned foreign or failed result: %+v", res)
		}
	}

	var ranged struct {
		Count   int               `json:"count"`
		Results []mavbench.Result `json:"results"`
	}
	queryJSON(t, ts.URL+"/v1/results?workload="+wlName+"&cores_min=2&cores_max=4", &ranged)
	if ranged.Count != 2 {
		t.Fatalf("cores range query returned %d, want 2", ranged.Count)
	}
	for _, res := range ranged.Results {
		if res.Spec.Cores < 2 || res.Spec.Cores > 4 {
			t.Fatalf("cores filter leaked cores=%d", res.Spec.Cores)
		}
	}

	var projected struct {
		Count   int              `json:"count"`
		Metrics []string         `json:"metrics"`
		Results []map[string]any `json:"results"`
	}
	queryJSON(t, ts.URL+"/v1/results?workload="+wlName+"&metrics=MissionTimeS,TotalEnergyKJ,NoSuchMetric", &projected)
	if projected.Count != 3 {
		t.Fatalf("projected query returned %d rows, want 3", projected.Count)
	}
	for _, row := range projected.Results {
		if _, ok := row["MissionTimeS"].(float64); !ok {
			t.Fatalf("row missing MissionTimeS: %v", row)
		}
		if _, ok := row["TotalEnergyKJ"].(float64); !ok {
			t.Fatalf("row missing TotalEnergyKJ: %v", row)
		}
		if _, ok := row["NoSuchMetric"]; ok {
			t.Fatalf("unknown metric name materialized: %v", row)
		}
		if row["workload"] != wlName {
			t.Fatalf("row missing spec axes: %v", row)
		}
		if _, ok := row["spec"]; ok {
			t.Fatalf("projection leaked full result: %v", row)
		}
	}

	var limited struct {
		Count int `json:"count"`
	}
	queryJSON(t, ts.URL+"/v1/results?workload="+wlName+"&limit=1", &limited)
	if limited.Count != 1 {
		t.Fatalf("limit=1 returned %d", limited.Count)
	}

	var none struct {
		Count   int               `json:"count"`
		Results []mavbench.Result `json:"results"`
	}
	queryJSON(t, ts.URL+"/v1/results?workload=no_such_workload", &none)
	if none.Count != 0 || none.Results == nil {
		t.Fatalf("empty query: count=%d results=%v (want 0 and [])", none.Count, none.Results)
	}

	for _, bad := range []string{
		"?difficulty_min=abc",
		"?cores_min=5&cores_max=2",
		"?ok=maybe",
		"?limit=-3",
	} {
		var e errorResponse
		if code := queryJSON(t, ts.URL+"/v1/results"+bad, &e); code != http.StatusBadRequest || e.Error == "" {
			t.Errorf("GET /v1/results%s = %d (%q), want 400 with JSON error", bad, code, e.Error)
		}
	}
}

// TestQueryResultsRequiresQueryableStore pins the 501 contract: a server on
// the default memory cache (or any non-segment store) has no query surface.
func TestQueryResultsRequiresQueryableStore(t *testing.T) {
	ts := newTestServer(t, Config{})
	var e errorResponse
	if code := queryJSON(t, ts.URL+"/v1/results", &e); code != http.StatusNotImplemented {
		t.Fatalf("query on memory-cache server = %d, want 501", code)
	}
	if !strings.Contains(e.Error, "store") {
		t.Errorf("501 error body %q does not explain the store backend", e.Error)
	}
}

// TestWorldCacheAndStoreMetrics pins the new observability series exactly: a
// three-point compute sweep over one world yields one world-cache miss and
// two hits, and the segment store's gauges reflect its stats.
func TestWorldCacheAndStoreMetrics(t *testing.T) {
	wlName := uniqueWorkload("svc_wc_metrics")
	core.Register(&serviceWorkload{name: wlName})
	store, err := resultdb.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	// A private world cache: the process-wide default is shared with every
	// other test in the package, so its counters are not assertable.
	srv := New(Config{Workers: 1, Store: store, WorldCache: mavbench.NewWorldCache()})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	resp := submitAs(t, ts, "", computeSweepBody(wlName, 11, 1, 2, 4))
	var ack submitResponse
	mustDecode(t, resp, &ack)
	collectResults(t, ts.URL, ack.ID)

	text := scrape(t, ts)
	for _, want := range []string{
		`# TYPE mavbench_worldcache_hits_total counter`,
		`mavbench_worldcache_hits_total 2`,
		`mavbench_worldcache_misses_total 1`,
		`mavbench_worldcache_evictions_total 0`,
		`mavbench_worldcache_entries 1`,
		`# TYPE mavbench_store_segments gauge`,
		`mavbench_store_segments 1`,
		`mavbench_store_compactions_total 0`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q:\n%s", want, grepMetric(text, "mavbench_worldcache")+grepMetric(text, "mavbench_store"))
		}
	}
	// The byte gauges exist and are positive (exact values depend on world
	// footprint estimates and record encoding, not worth pinning).
	for _, family := range []string{"mavbench_worldcache_bytes", "mavbench_store_segment_bytes"} {
		line := strings.TrimSpace(grepMetric(text, family))
		if line == "" || strings.HasSuffix(line, " 0") {
			t.Errorf("%s = %q, want a positive sample", family, line)
		}
	}
}

// TestWorldCacheDisabled pins the opt-out: with DisableWorldCache every run
// builds its world, and the counters stay zero.
func TestWorldCacheDisabled(t *testing.T) {
	wlName := uniqueWorkload("svc_wc_off")
	core.Register(&serviceWorkload{name: wlName})
	srv := New(Config{Workers: 1, DisableWorldCache: true})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	resp := submitAs(t, ts, "", computeSweepBody(wlName, 3, 1, 2))
	var ack submitResponse
	mustDecode(t, resp, &ack)
	if results := collectResults(t, ts.URL, ack.ID); len(results) != 2 {
		t.Fatalf("campaign produced %d results, want 2", len(results))
	}
	text := scrape(t, ts)
	if !strings.Contains(text, "mavbench_worldcache_hits_total 0") ||
		!strings.Contains(text, "mavbench_worldcache_misses_total 0") {
		t.Errorf("disabled world cache counted activity:\n%s", grepMetric(text, "mavbench_worldcache"))
	}
}
