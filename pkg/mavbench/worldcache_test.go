package mavbench

import (
	"context"
	"testing"

	"mavbench/internal/core"
)

// TestWorldCacheBitIdenticalToCold is the cache's correctness contract: a
// compute-axis sweep (one world, several operating points) run with a warm
// world cache must produce byte-for-byte the same results as the same sweep
// with caching disabled. A clone that drifted from the built world — obstacle
// layout, patrol phase, or RNG position — would surface here as a report
// diff on a real workload.
func TestWorldCacheBitIdenticalToCold(t *testing.T) {
	points := PaperOperatingPoints()
	sweep := []OperatingPoint{points[0], points[4], points[8]}
	var specs []Spec
	for _, pt := range sweep {
		specs = append(specs, mustSpec(t, "scanning",
			WithSeed(42),
			WithWorldScale(0.3),
			WithOperatingPoint(pt.Cores, pt.FreqGHz),
		))
	}
	for _, s := range specs[1:] {
		if s.WorldHash() != specs[0].WorldHash() {
			t.Fatalf("compute sweep does not share a world: %s vs %s", s.WorldHash(), specs[0].WorldHash())
		}
	}

	cold, err := NewCampaign(specs...).SetWorldCache(nil).Collect(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	cache := NewWorldCache()
	warm, err := NewCampaign(specs...).SetWorldCache(cache).Collect(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	if len(cold) != len(specs) || len(warm) != len(specs) {
		t.Fatalf("got %d cold / %d warm results, want %d", len(cold), len(warm), len(specs))
	}
	for i := range cold {
		if !cold[i].OK() {
			t.Fatalf("cold run %d failed: %v", i, cold[i].Err())
		}
		if !sameJSON(t, cold[i], warm[i]) {
			t.Errorf("run %d diverged with a warm world cache:\ncold %+v\nwarm %+v", i, cold[i], warm[i])
		}
	}
	st := cache.Stats()
	if st.Misses != 1 || st.Hits != int64(len(specs)-1) {
		t.Errorf("cache stats = %d misses / %d hits, want 1 / %d (one build, clones after)",
			st.Misses, st.Hits, len(specs)-1)
	}
}

// TestWorldCacheBuildsWorldOnce counts actual world constructions through the
// workload's own eyes: a cached compute sweep calls World exactly once, a
// cache-disabled sweep once per run.
func TestWorldCacheBuildsWorldOnce(t *testing.T) {
	wl := &testWorkload{name: "api_worldcache_once"}
	core.Register(wl)
	points := PaperOperatingPoints()
	var specs []Spec
	for _, pt := range []OperatingPoint{points[0], points[4], points[8]} {
		specs = append(specs, mustSpec(t, wl.name,
			WithSeed(7),
			WithMaxMissionTime(30),
			WithOperatingPoint(pt.Cores, pt.FreqGHz),
		))
	}

	if _, err := NewCampaign(specs...).SetWorldCache(NewWorldCache()).Collect(context.Background()); err != nil {
		t.Fatal(err)
	}
	if n := wl.runs.Load(); n != 1 {
		t.Errorf("cached sweep built the world %d times, want 1", n)
	}

	wl.runs.Store(0)
	if _, err := NewCampaign(specs...).SetWorldCache(nil).Collect(context.Background()); err != nil {
		t.Fatal(err)
	}
	if n := wl.runs.Load(); n != int64(len(specs)) {
		t.Errorf("uncached sweep built the world %d times, want %d", n, len(specs))
	}
}

// TestDifficultySweepSpecsPairWorlds pins the sweep/world-hash contract that
// makes operating-point comparisons fair: sweeping difficulty at two
// different operating points yields pairwise-identical world hashes (same
// world per difficulty cell) while the compute and combined hashes differ.
func TestDifficultySweepSpecsPairWorlds(t *testing.T) {
	points := PaperOperatingPoints()
	low, high := points[0], points[len(points)-1]
	diffs := []float64{0, 0.5, 1}

	baseLow := mustSpec(t, "package_delivery", WithSeed(9), WithScenario("urban-dense"),
		WithOperatingPoint(low.Cores, low.FreqGHz))
	baseHigh := mustSpec(t, "package_delivery", WithSeed(9), WithScenario("urban-dense"),
		WithOperatingPoint(high.Cores, high.FreqGHz))
	sweepLow := DifficultySweepSpecs(baseLow, diffs)
	sweepHigh := DifficultySweepSpecs(baseHigh, diffs)

	worldHashes := map[string]bool{}
	for i := range diffs {
		sl, sh := sweepLow[i], sweepHigh[i]
		if sl.WorldHash() != sh.WorldHash() {
			t.Errorf("difficulty %g: operating points got different worlds:\n%s\n%s",
				diffs[i], sl.WorldHash(), sh.WorldHash())
		}
		if sl.ComputeHash() == sh.ComputeHash() {
			t.Errorf("difficulty %g: distinct operating points share a compute hash", diffs[i])
		}
		if sl.Hash() == sh.Hash() {
			t.Errorf("difficulty %g: distinct operating points share a combined hash", diffs[i])
		}
		worldHashes[sl.WorldHash()] = true
	}
	if len(worldHashes) != len(diffs) {
		t.Errorf("sweep produced %d distinct worlds for %d difficulties", len(worldHashes), len(diffs))
	}
}
