package mavbench

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strconv"
	"strings"
	"time"

	"mavbench/internal/compute"
	"mavbench/internal/core"
	"mavbench/internal/env"
	// Importing the workloads registers the five benchmark applications, so
	// every consumer of the public API gets a populated registry for free.
	_ "mavbench/internal/workloads"
)

// Spec is a complete, serializable description of one benchmark run. Build it
// with NewSpec (which validates and rejects bad input) or unmarshal it from
// JSON and call Validate yourself (the mavbenchd service does the latter).
// The zero value of every field means "benchmark default".
type Spec struct {
	// Workload selects the benchmark application (see Workloads()).
	Workload string `json:"workload"`
	// Cores and FreqGHz select the companion-computer operating point
	// (0 = 4 cores @ 2.2 GHz).
	Cores   int     `json:"cores,omitempty"`
	FreqGHz float64 `json:"freq_ghz,omitempty"`
	// Seed makes runs reproducible; it also seeds world generation.
	Seed int64 `json:"seed,omitempty"`

	// Plug-and-play kernels (see Detectors/Localizers/Planners).
	Detector  string `json:"detector,omitempty"`
	Localizer string `json:"localizer,omitempty"`
	Planner   string `json:"planner,omitempty"`

	// Occupancy-map resolution knobs (meters).
	OctomapResolution float64 `json:"octomap_resolution,omitempty"`
	DynamicResolution bool    `json:"dynamic_resolution,omitempty"`
	CoarseResolution  float64 `json:"coarse_resolution,omitempty"`

	// DepthNoiseStd injects Gaussian depth-camera noise (meters).
	DepthNoiseStd float64 `json:"depth_noise_std,omitempty"`

	// CloudOffload runs the planning-stage kernels on a cloud server reached
	// over CloudLink (nil = the paper's 1 Gb/s LAN).
	CloudOffload bool       `json:"cloud_offload,omitempty"`
	CloudLink    *CloudLink `json:"cloud_link,omitempty"`

	// Environment overrides the workload's default world (see Environments();
	// empty keeps the default).
	Environment string `json:"environment,omitempty"`
	// Scenario selects a named difficulty-graded environment preset from the
	// catalog (see Scenarios(); "urban-dense", or a bare family name for its
	// default grade). Mutually exclusive with Environment — a scenario
	// already names its family. Empty keeps the workload default.
	Scenario string `json:"scenario,omitempty"`
	// Difficulty overrides the scenario's grade on the continuous [-1, 1]
	// scale (-1 = sparsest, +1 = densest; 0 keeps the scenario's grade).
	Difficulty float64 `json:"difficulty,omitempty"`
	// ScenarioKnobs override individual difficulty knobs on top of the
	// graded difficulty (nil = all graded).
	ScenarioKnobs *ScenarioKnobs `json:"scenario_knobs,omitempty"`
	// WorldScale shrinks (<1) or grows (>1) the mission extent (0 = 1.0).
	WorldScale float64 `json:"world_scale,omitempty"`
	// MaxMissionTimeS bounds the mission (0 = workload default).
	MaxMissionTimeS float64 `json:"max_mission_time_s,omitempty"`
	// KeepTraces enables power/phase time-series collection.
	KeepTraces bool `json:"keep_traces,omitempty"`

	// Vehicles is the number of drones flying the mission together (0 and 1
	// both mean the classic single-drone run — the canonical form is 0). With
	// N ≥ 2 the run is a fleet mission over one shared world: per-drone seeds,
	// inter-vehicle collision checks, coordinated workload variants and
	// per-drone reports in Result.VehicleReports. See docs/MULTIVEHICLE.md.
	Vehicles int `json:"vehicles,omitempty"`
}

// CloudLink describes the network between the MAV and a cloud server, in
// plain wire-friendly units.
type CloudLink struct {
	Name          string  `json:"name,omitempty"`
	BandwidthMbps float64 `json:"bandwidth_mbps"`
	RTTMillis     float64 `json:"rtt_ms,omitempty"`
	// DropProbability is the chance an exchange must be retried once.
	DropProbability float64 `json:"drop_probability,omitempty"`
}

// LAN1Gbps returns the paper's cloud-offload link (1 Gb/s, 2 ms RTT).
func LAN1Gbps() CloudLink { return linkFromCompute(compute.LAN1Gbps()) }

// LTE returns a contemporary cellular link (20 Mb/s, 60 ms RTT).
func LTE() CloudLink { return linkFromCompute(compute.LTE()) }

func linkFromCompute(l compute.CloudLink) CloudLink {
	return CloudLink{
		Name:            l.Name,
		BandwidthMbps:   l.BandwidthMbps,
		RTTMillis:       float64(l.RTT) / float64(time.Millisecond),
		DropProbability: l.DropProbability,
	}
}

func (l CloudLink) compute() compute.CloudLink {
	return compute.CloudLink{
		Name:            l.Name,
		BandwidthMbps:   l.BandwidthMbps,
		RTT:             time.Duration(l.RTTMillis * float64(time.Millisecond)),
		DropProbability: l.DropProbability,
	}
}

// ScenarioKnobs are per-knob scenario difficulty overrides: dimensionless
// multipliers relative to the environment family's default configuration.
// A zero field keeps the value implied by the graded difficulty; see
// docs/SCENARIOS.md for what each knob means per family.
type ScenarioKnobs struct {
	// ObstacleDensity scales how much of the world is blocked (building
	// density, wall frequency, tree/rubble counts).
	ObstacleDensity float64 `json:"obstacle_density,omitempty"`
	// ClutterScale scales secondary clutter (building footprints and
	// heights, scattered boxes, rubble size).
	ClutterScale float64 `json:"clutter_scale,omitempty"`
	// DynamicCount scales the number of moving obstacles.
	DynamicCount float64 `json:"dynamic_count,omitempty"`
	// DynamicSpeed scales moving-obstacle speed.
	DynamicSpeed float64 `json:"dynamic_speed,omitempty"`
	// ExtentScale scales the world extents on top of WorldScale.
	ExtentScale float64 `json:"extent_scale,omitempty"`
}

func (k ScenarioKnobs) env() env.Knobs {
	return env.Knobs{
		ObstacleDensity: k.ObstacleDensity,
		ClutterScale:    k.ClutterScale,
		DynamicCount:    k.DynamicCount,
		DynamicSpeed:    k.DynamicSpeed,
		ExtentScale:     k.ExtentScale,
	}
}

func knobsFromEnv(k env.Knobs) ScenarioKnobs {
	return ScenarioKnobs{
		ObstacleDensity: k.ObstacleDensity,
		ClutterScale:    k.ClutterScale,
		DynamicCount:    k.DynamicCount,
		DynamicSpeed:    k.DynamicSpeed,
		ExtentScale:     k.ExtentScale,
	}
}

// Option mutates a Spec under construction. Options never fail on their own;
// NewSpec validates the assembled spec once all options have been applied.
type Option func(*Spec)

// WithOperatingPoint selects the companion-computer operating point
// (cores × frequency), the unit of the paper's heat-map sweeps.
func WithOperatingPoint(cores int, freqGHz float64) Option {
	return func(s *Spec) { s.Cores, s.FreqGHz = cores, freqGHz }
}

// WithSeed fixes the run's random seed (world generation and noise).
func WithSeed(seed int64) Option { return func(s *Spec) { s.Seed = seed } }

// WithDetector selects the object-detector kernel (see Detectors()).
func WithDetector(name string) Option { return func(s *Spec) { s.Detector = name } }

// WithLocalizer selects the localization kernel (see Localizers()).
func WithLocalizer(name string) Option { return func(s *Spec) { s.Localizer = name } }

// WithPlanner selects the motion-planner kernel (see Planners()).
func WithPlanner(name string) Option { return func(s *Spec) { s.Planner = name } }

// WithOctomapResolution sets a static occupancy-map voxel size in meters.
func WithOctomapResolution(meters float64) Option {
	return func(s *Spec) { s.OctomapResolution = meters }
}

// WithDynamicResolution enables the energy case study's runtime that switches
// between a fine and a coarse voxel size with obstacle density.
func WithDynamicResolution(fineMeters, coarseMeters float64) Option {
	return func(s *Spec) {
		s.DynamicResolution = true
		s.OctomapResolution = fineMeters
		s.CoarseResolution = coarseMeters
	}
}

// WithDepthNoise injects Gaussian depth-camera noise (standard deviation in
// meters), the reliability case study's knob.
func WithDepthNoise(stdMeters float64) Option {
	return func(s *Spec) { s.DepthNoiseStd = stdMeters }
}

// WithCloudOffload offloads the planning-stage kernels to a cloud server
// reached over link.
func WithCloudOffload(link CloudLink) Option {
	return func(s *Spec) {
		s.CloudOffload = true
		l := link
		s.CloudLink = &l
	}
}

// WithEnvironment overrides the workload's default world (see Environments()).
func WithEnvironment(name string) Option { return func(s *Spec) { s.Environment = name } }

// WithScenario selects a named difficulty-graded scenario from the catalog
// (see Scenarios()): "urban-dense", "farm-sparse", ... A bare family name
// ("urban") selects its default grade.
func WithScenario(name string) Option { return func(s *Spec) { s.Scenario = name } }

// WithDifficulty sets the continuous scenario difficulty on the [-1, 1]
// scale: -1 is the sparse preset, 0 the default, +1 the dense preset, and
// anything in between interpolates the difficulty knobs linearly.
func WithDifficulty(d float64) Option { return func(s *Spec) { s.Difficulty = d } }

// WithScenarioKnobs overrides individual difficulty knobs (zero fields keep
// the graded values).
func WithScenarioKnobs(k ScenarioKnobs) Option {
	return func(s *Spec) {
		kk := k
		s.ScenarioKnobs = &kk
	}
}

// WithWorldScale shrinks (<1) or grows (>1) the mission extent.
func WithWorldScale(scale float64) Option { return func(s *Spec) { s.WorldScale = scale } }

// WithMaxMissionTime bounds the mission in simulated seconds.
func WithMaxMissionTime(seconds float64) Option {
	return func(s *Spec) { s.MaxMissionTimeS = seconds }
}

// WithTraces enables power/phase time-series collection in the report.
func WithTraces() Option { return func(s *Spec) { s.KeepTraces = true } }

// WithVehicles sets the number of drones flying the mission together
// (1 = the classic single-drone run; up to 8). Multi-vehicle runs share one
// world, perform inter-vehicle collision checks, and report per-drone metrics
// in Result.VehicleReports; see docs/MULTIVEHICLE.md.
func WithVehicles(n int) Option { return func(s *Spec) { s.Vehicles = n } }

// NewSpec builds and validates a run spec. Unknown workload, kernel or
// environment names and out-of-range knobs are reported here, at build time,
// with errors listing the valid values — never silently defaulted inside the
// engine.
func NewSpec(workload string, opts ...Option) (Spec, error) {
	s := Spec{Workload: workload}
	for _, opt := range opts {
		opt(&s)
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// Validate checks every knob of the spec. Name validation is delegated to the
// engine's single source of truth (core.Params.Validate), so the public API
// and the internal runner can never disagree about what is legal.
func (s Spec) Validate() error {
	if strings.TrimSpace(s.Workload) == "" {
		return fmt.Errorf("mavbench: spec has no workload (available: %v)", workloadNames())
	}
	switch {
	case s.Cores < 0 || s.Cores > 8:
		return fmt.Errorf("mavbench: cores = %d out of range [0, 8] (0 = default, paper sweeps 2-4)", s.Cores)
	case s.FreqGHz < 0 || s.FreqGHz > 4:
		return fmt.Errorf("mavbench: freq_ghz = %g out of range [0, 4] (0 = default, paper sweeps 0.8-2.2)", s.FreqGHz)
	case s.OctomapResolution < 0 || s.OctomapResolution > 2:
		return fmt.Errorf("mavbench: octomap_resolution = %g m out of range [0, 2]", s.OctomapResolution)
	case s.CoarseResolution < 0 || s.CoarseResolution > 5:
		return fmt.Errorf("mavbench: coarse_resolution = %g m out of range [0, 5]", s.CoarseResolution)
	case s.DynamicResolution && s.OctomapResolution > 0 && s.CoarseResolution > 0 &&
		s.CoarseResolution < s.OctomapResolution:
		return fmt.Errorf("mavbench: dynamic resolution needs coarse (%g m) >= fine (%g m)",
			s.CoarseResolution, s.OctomapResolution)
	case s.DepthNoiseStd < 0 || s.DepthNoiseStd > 10:
		return fmt.Errorf("mavbench: depth_noise_std = %g m out of range [0, 10]", s.DepthNoiseStd)
	case s.WorldScale < 0 || s.WorldScale > 10:
		return fmt.Errorf("mavbench: world_scale = %g out of range [0, 10]", s.WorldScale)
	case s.MaxMissionTimeS < 0:
		return fmt.Errorf("mavbench: max_mission_time_s = %g must be >= 0", s.MaxMissionTimeS)
	}
	if s.CloudLink != nil {
		if err := s.CloudLink.compute().Validate(); err != nil {
			return fmt.Errorf("mavbench: %w", err)
		}
	}
	return s.params().Validate()
}

// Canonical returns the spec with every default filled in and alias kernel
// spellings resolved — the form the engine actually runs and the form Hash
// addresses. Canonicalizing an invalid spec is harmless (Hash/Canonical never
// fail); validation is a separate concern.
func (s Spec) Canonical() Spec {
	return specFromParams(s.params().Normalize())
}

// Hash returns the spec's stable content address: a hex SHA-256 over the
// canonical form. Equivalent specs — alias spellings, explicit defaults —
// hash identically, in any process, on any platform. The hash is the key of
// the Campaign result cache and of the service's GET /v1/specs/{hash}.
func (s Spec) Hash() string {
	c := s.Canonical()
	var b strings.Builder
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	// One "key=value" line per field, fixed order. Adding a field to Spec
	// changes every hash (a new cache generation), which is exactly what a
	// content address should do.
	fmt.Fprintf(&b, "workload=%s\n", c.Workload)
	fmt.Fprintf(&b, "cores=%d\n", c.Cores)
	fmt.Fprintf(&b, "freq_ghz=%s\n", f(c.FreqGHz))
	fmt.Fprintf(&b, "seed=%d\n", c.Seed)
	fmt.Fprintf(&b, "detector=%s\n", c.Detector)
	fmt.Fprintf(&b, "localizer=%s\n", c.Localizer)
	fmt.Fprintf(&b, "planner=%s\n", c.Planner)
	fmt.Fprintf(&b, "octomap_resolution=%s\n", f(c.OctomapResolution))
	fmt.Fprintf(&b, "dynamic_resolution=%t\n", c.DynamicResolution)
	fmt.Fprintf(&b, "coarse_resolution=%s\n", f(c.CoarseResolution))
	fmt.Fprintf(&b, "depth_noise_std=%s\n", f(c.DepthNoiseStd))
	fmt.Fprintf(&b, "cloud_offload=%t\n", c.CloudOffload)
	if c.CloudLink != nil {
		fmt.Fprintf(&b, "cloud_link=%s,%s,%s,%s\n",
			c.CloudLink.Name, f(c.CloudLink.BandwidthMbps), f(c.CloudLink.RTTMillis), f(c.CloudLink.DropProbability))
	} else {
		b.WriteString("cloud_link=\n")
	}
	fmt.Fprintf(&b, "environment=%s\n", c.Environment)
	fmt.Fprintf(&b, "scenario=%s\n", c.Scenario)
	fmt.Fprintf(&b, "difficulty=%s\n", f(c.Difficulty))
	if c.ScenarioKnobs != nil {
		fmt.Fprintf(&b, "scenario_knobs=%s,%s,%s,%s,%s\n",
			f(c.ScenarioKnobs.ObstacleDensity), f(c.ScenarioKnobs.ClutterScale),
			f(c.ScenarioKnobs.DynamicCount), f(c.ScenarioKnobs.DynamicSpeed),
			f(c.ScenarioKnobs.ExtentScale))
	} else {
		b.WriteString("scenario_knobs=\n")
	}
	fmt.Fprintf(&b, "world_scale=%s\n", f(c.WorldScale))
	fmt.Fprintf(&b, "max_mission_time_s=%s\n", f(c.MaxMissionTimeS))
	fmt.Fprintf(&b, "keep_traces=%t\n", c.KeepTraces)
	// The vehicles line joins the address only for fleets (canonical
	// single-drone form is 0), so every pre-fleet hash — result stores,
	// golden traces, dedup keys — stays byte-identical.
	if c.Vehicles > 1 {
		fmt.Fprintf(&b, "vehicles=%d\n", c.Vehicles)
	}
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:])
}

// WorldHash returns the content address of the spec's world: a hex SHA-256
// over the canonical world-affecting fields only (workload, seed,
// environment/scenario, difficulty, scenario knobs, world scale). Specs that
// differ only in compute-side knobs — operating point, kernels, resolutions,
// noise, offload, mission bound, traces — share a WorldHash and fly
// byte-identical worlds; the world cache is keyed by it. The combined Hash
// is unaffected by this split and stays byte-stable.
func (s Spec) WorldHash() string { return s.params().WorldHash() }

// ComputeHash returns the content address of the spec's compute-side knobs:
// everything Hash covers that WorldHash does not. Together the two hashes
// factor a spec's identity along the world/compute boundary; a compute-axis
// sweep holds WorldHash fixed while ComputeHash varies per cell.
func (s Spec) ComputeHash() string { return s.params().ComputeHash() }

// params converts the spec to the engine's parameter struct.
func (s Spec) params() core.Params {
	p := core.Params{
		Workload:          s.Workload,
		Cores:             s.Cores,
		FreqGHz:           s.FreqGHz,
		Seed:              s.Seed,
		Detector:          s.Detector,
		Localizer:         s.Localizer,
		Planner:           s.Planner,
		OctomapResolution: s.OctomapResolution,
		DynamicResolution: s.DynamicResolution,
		CoarseResolution:  s.CoarseResolution,
		DepthNoiseStd:     s.DepthNoiseStd,
		CloudOffload:      s.CloudOffload,
		Environment:       s.Environment,
		Scenario:          s.Scenario,
		Difficulty:        s.Difficulty,
		WorldScale:        s.WorldScale,
		MaxMissionTimeS:   s.MaxMissionTimeS,
		KeepTraces:        s.KeepTraces,
		Vehicles:          s.Vehicles,
	}
	if s.CloudLink != nil {
		p.CloudLink = s.CloudLink.compute()
	}
	if s.ScenarioKnobs != nil {
		p.ScenarioKnobs = s.ScenarioKnobs.env()
	}
	return p
}

// specFromParams is the inverse of params.
func specFromParams(p core.Params) Spec {
	s := Spec{
		Workload:          p.Workload,
		Cores:             p.Cores,
		FreqGHz:           p.FreqGHz,
		Seed:              p.Seed,
		Detector:          p.Detector,
		Localizer:         p.Localizer,
		Planner:           p.Planner,
		OctomapResolution: p.OctomapResolution,
		DynamicResolution: p.DynamicResolution,
		CoarseResolution:  p.CoarseResolution,
		DepthNoiseStd:     p.DepthNoiseStd,
		CloudOffload:      p.CloudOffload,
		Environment:       p.Environment,
		Scenario:          p.Scenario,
		Difficulty:        p.Difficulty,
		WorldScale:        p.WorldScale,
		MaxMissionTimeS:   p.MaxMissionTimeS,
		KeepTraces:        p.KeepTraces,
		Vehicles:          p.Vehicles,
	}
	if p.CloudLink != (compute.CloudLink{}) {
		l := linkFromCompute(p.CloudLink)
		s.CloudLink = &l
	}
	if !p.ScenarioKnobs.IsZero() {
		k := knobsFromEnv(p.ScenarioKnobs)
		s.ScenarioKnobs = &k
	}
	return s
}
