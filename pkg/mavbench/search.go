package mavbench

import (
	"context"
	"fmt"
	"strconv"
	"strings"

	"mavbench/internal/env"
	"mavbench/internal/search"
)

// This file is the public surface of the adversarial scenario-search engine
// (internal/search): synthesize difficulty-knob vectors, score each candidate
// by running real missions through the campaign engine, and walk the knob
// space toward the settings that maximize collision rate or quality-of-flight
// drop at a chosen compute operating point — the paper's compute↔safety
// tradeoff turned into a scenario-discovery loop.
//
// The search is deterministic end to end: candidate sampling is seeded, world
// seeds derive via DeriveSeed, and candidate batches run as ordinary
// campaigns (so they inherit the result store, world cache and — through a
// custom runner — fleet sharding). The same request always produces a
// byte-identical Frontier.

// SearchObjective names what the adversarial search maximizes.
type SearchObjective string

const (
	// SearchCollisions maximizes the collision rate (collisions per
	// simulated mission minute) at the chosen operating point.
	SearchCollisions SearchObjective = "collisions"
	// SearchQoF maximizes quality-of-flight degradation: a composite of
	// collision rate, mission-failure fraction and velocity drop relative to
	// the default-difficulty baseline at the same operating point.
	SearchQoF SearchObjective = "qof"
)

// SearchObjectives returns the valid objective names.
func SearchObjectives() []SearchObjective { return []SearchObjective{SearchCollisions, SearchQoF} }

// SearchRequest parameterizes one adversarial search. The zero value of every
// field means "default"; Validate reports what the defaults resolve to.
type SearchRequest struct {
	// Workload is the benchmark application whose missions score candidates.
	Workload string `json:"workload"`
	// Family is the environment family whose knob space is searched
	// (empty = the workload's home family).
	Family string `json:"family,omitempty"`
	// Cores and FreqGHz fix the compute operating point the search probes
	// (0 = the benchmark default of 4 cores @ 2.2 GHz).
	Cores   int     `json:"cores,omitempty"`
	FreqGHz float64 `json:"freq_ghz,omitempty"`
	// Seed drives candidate sampling and (via DeriveSeed) every mission
	// seed; the same seed and budget reproduce the frontier byte-for-byte.
	Seed int64 `json:"seed,omitempty"`
	// Objective selects what the search maximizes (default collisions).
	Objective SearchObjective `json:"objective,omitempty"`

	// Generations is the number of refinement generations after the uniform
	// random init generation (default 3).
	Generations int `json:"generations,omitempty"`
	// Population is the number of candidates per generation (default 8).
	Population int `json:"population,omitempty"`
	// Elites is how many top candidates refit the sampler per generation
	// (default max(2, Population/4)).
	Elites int `json:"elites,omitempty"`
	// Repeats is the number of missions per candidate; seeds are derived per
	// repeat and shared across candidates so comparisons are paired
	// (default 2).
	Repeats int `json:"repeats,omitempty"`

	// WorldScale and MaxMissionTimeS size each scoring mission
	// (default 0.3 / 300 s — the unit-test scale; raise for paper-sized
	// frontiers).
	WorldScale      float64 `json:"world_scale,omitempty"`
	MaxMissionTimeS float64 `json:"max_mission_time_s,omitempty"`
	// Workers bounds the default local runner's campaign pool (<= 0 = one
	// per CPU). Ignored when a custom runner is installed.
	Workers int `json:"workers,omitempty"`
}

// homeFamilies maps each benchmark workload to the environment family its
// difficulty tiers grade — the family an unqualified search explores.
var homeFamilies = map[string]string{
	"scanning":           "farm",
	"package_delivery":   "urban",
	"mapping_3d":         "disaster",
	"search_and_rescue":  "disaster",
	"aerial_photography": "park",
}

// withDefaults resolves every zero field.
func (r SearchRequest) withDefaults() SearchRequest {
	if r.Family == "" {
		r.Family = homeFamilies[r.Workload]
	}
	if r.Cores == 0 {
		r.Cores = 4
	}
	if r.FreqGHz == 0 {
		r.FreqGHz = 2.2
	}
	if r.Objective == "" {
		r.Objective = SearchCollisions
	}
	if r.Generations <= 0 {
		r.Generations = 3
	}
	if r.Population <= 0 {
		r.Population = 8
	}
	if r.Elites <= 0 {
		r.Elites = r.Population / 4
		if r.Elites < 2 {
			r.Elites = 2
		}
	}
	if r.Repeats <= 0 {
		r.Repeats = 2
	}
	if r.WorldScale == 0 {
		r.WorldScale = 0.3
	}
	if r.MaxMissionTimeS == 0 {
		r.MaxMissionTimeS = 300
	}
	return r
}

// TotalRuns returns how many missions the request will simulate: one batch
// per generation (including the random init) plus the baseline runs.
func (r SearchRequest) TotalRuns() int {
	r = r.withDefaults()
	return (r.Generations+1)*r.Population*r.Repeats + r.Repeats
}

// Validate checks the request and the spec every candidate will expand to.
func (r SearchRequest) Validate() error {
	rr := r.withDefaults()
	if rr.Family == "" {
		return fmt.Errorf("mavbench: search has no family and workload %q has no home family (set family explicitly; valid: %v)",
			rr.Workload, Environments())
	}
	ok := false
	for _, f := range ScenarioFamilies() {
		if f == rr.Family {
			ok = true
		}
	}
	if !ok {
		return fmt.Errorf("mavbench: unknown search family %q (valid: %v)", rr.Family, ScenarioFamilies())
	}
	switch rr.Objective {
	case SearchCollisions, SearchQoF:
	default:
		return fmt.Errorf("mavbench: unknown search objective %q (valid: %v)", rr.Objective, SearchObjectives())
	}
	if rr.Elites > rr.Population {
		return fmt.Errorf("mavbench: search elites = %d exceeds population = %d", rr.Elites, rr.Population)
	}
	// A candidate spec carries every remaining knob; validating one validates
	// them all (candidates differ only in ScenarioKnobs, which the engine
	// bounds itself).
	probe := rr.candidateSpec(env.DefaultKnobs(), 0)
	return probe.Validate()
}

// candidateSpec expands one (knob vector, repeat) pair into a run spec. All
// candidates share the per-repeat seeds, so scores compare paired missions.
func (r SearchRequest) candidateSpec(k env.Knobs, repeat int) Spec {
	knobs := knobsFromEnv(k)
	return Spec{
		Workload:        r.Workload,
		Cores:           r.Cores,
		FreqGHz:         r.FreqGHz,
		Seed:            DeriveSeed(r.Seed, r.Workload, r.Cores, r.FreqGHz, repeat),
		Localizer:       "ground_truth",
		Scenario:        r.Family + "-default",
		ScenarioKnobs:   &knobs,
		WorldScale:      r.WorldScale,
		MaxMissionTimeS: r.MaxMissionTimeS,
	}
}

// FrontierCandidate is one scored knob vector.
type FrontierCandidate struct {
	// Knobs is the candidate's difficulty knob vector (relative to the
	// family defaults; pass via WithScenarioKnobs to reproduce its world).
	Knobs ScenarioKnobs `json:"knobs"`
	// Score is the objective value (higher = more adversarial).
	Score float64 `json:"score"`
	// CollisionRate is collisions per simulated mission minute, aggregated
	// over the candidate's repeats.
	CollisionRate float64 `json:"collision_rate"`
	// SuccessRate is the fraction of the candidate's missions that
	// succeeded.
	SuccessRate float64 `json:"success_rate"`
	// AvgSpeedMPS averages mission velocity over the repeats.
	AvgSpeedMPS float64 `json:"avg_speed_mps"`
	// CalibratedDifficulty places the candidate's world on the family's
	// graded scale (-1 ≡ sparse anchor, +1 ≡ dense anchor, extrapolating
	// beyond), measured by the calibration probe rather than promised by
	// the knobs.
	CalibratedDifficulty float64 `json:"calibrated_difficulty"`
}

// FrontierGeneration summarizes one search generation. Index 0 is the
// uniform random initialization — the baseline an adversarial search must
// improve on.
type FrontierGeneration struct {
	Index     int               `json:"index"`
	Best      FrontierCandidate `json:"best"`
	BestScore float64           `json:"best_score"`
	MeanScore float64           `json:"mean_score"`
}

// SearchBudget echoes the resolved search budget.
type SearchBudget struct {
	Generations int `json:"generations"`
	Population  int `json:"population"`
	Elites      int `json:"elites"`
	Repeats     int `json:"repeats"`
}

// Frontier is the result of one adversarial search: the most adversarial
// knob vector found, the per-generation trajectory that led there, and the
// default-difficulty baseline for reference. It is plain data —
// json.MarshalIndent of a Frontier is byte-stable across runs of the same
// request.
type Frontier struct {
	Workload  string          `json:"workload"`
	Family    string          `json:"family"`
	Cores     int             `json:"cores"`
	FreqGHz   float64         `json:"freq_ghz"`
	Objective SearchObjective `json:"objective"`
	Seed      int64           `json:"seed"`
	Budget    SearchBudget    `json:"budget"`
	// Baseline scores the family's default-difficulty world under the same
	// seeds and operating point.
	Baseline FrontierCandidate `json:"baseline"`
	// Best is the highest-scoring candidate across all generations.
	Best        FrontierCandidate    `json:"best"`
	Generations []FrontierGeneration `json:"generations"`
	// TotalRuns counts the missions simulated (candidates × repeats plus
	// the baseline).
	TotalRuns int `json:"total_runs"`
}

// SearchRunner executes a batch of specs and returns one result per spec in
// submission order. It is how the search plugs into different execution
// substrates: the default runner is a local Campaign (result store and world
// cache included); mavbenchd installs a fleet-sharded runner; the CLI's
// -remote mode installs an HTTP client runner.
type SearchRunner func(ctx context.Context, specs []Spec) ([]Result, error)

// SearchOption configures SearchFrontier beyond the request.
type SearchOption func(*searchExec)

// WithSearchRunner substitutes the batch executor candidate generations run
// on (default: a local Campaign honoring SearchRequest.Workers).
func WithSearchRunner(run SearchRunner) SearchOption {
	return func(e *searchExec) { e.run = run }
}

// WithSearchStore installs a content-addressed result store on the default
// local runner (no effect when WithSearchRunner is used): candidates
// re-sampled across generations — and searches resumed with the same seed —
// are served from the store instead of re-simulating.
func WithSearchStore(store ResultStore) SearchOption {
	return func(e *searchExec) { e.store = store }
}

type searchExec struct {
	run   SearchRunner
	store ResultStore
}

// candMetrics aggregates one candidate's missions.
type candMetrics struct {
	score         float64
	collisionRate float64
	successRate   float64
	avgSpeed      float64
}

// SearchFrontier runs the adversarial scenario search described by req and
// returns the found frontier. Results are deterministic per (request,
// engine version): the CI nightly pins byte-identical frontiers across runs.
func SearchFrontier(ctx context.Context, req SearchRequest, opts ...SearchOption) (*Frontier, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := req.Validate(); err != nil {
		return nil, err
	}
	r := req.withDefaults()
	exec := &searchExec{}
	for _, opt := range opts {
		opt(exec)
	}
	if exec.run == nil {
		workers, store := r.Workers, exec.store
		exec.run = func(ctx context.Context, specs []Spec) ([]Result, error) {
			c := NewCampaign(specs...).SetWorkers(workers)
			if store != nil {
				c.SetStore(store)
			}
			return c.Collect(ctx)
		}
	}

	cal, err := search.NewCalibrator(r.Family, r.Seed)
	if err != nil {
		return nil, err
	}

	// evaluate scores a batch of knob vectors: one campaign per generation,
	// Repeats missions per candidate, fixed aggregation order.
	metricsByKey := map[string]candMetrics{}
	baseline := candMetrics{}
	evaluate := func(ctx context.Context, batch [][]float64) ([]float64, error) {
		specs := make([]Spec, 0, len(batch)*r.Repeats)
		for _, v := range batch {
			k := search.KnobsFromVector(v)
			for rep := 0; rep < r.Repeats; rep++ {
				specs = append(specs, r.candidateSpec(k, rep))
			}
		}
		results, err := exec.run(ctx, specs)
		if err != nil {
			return nil, fmt.Errorf("mavbench: search candidate batch failed: %w", err)
		}
		if len(results) != len(specs) {
			return nil, fmt.Errorf("mavbench: search runner returned %d results for %d specs", len(results), len(specs))
		}
		scores := make([]float64, len(batch))
		for i := range batch {
			m, err := aggregate(results[i*r.Repeats : (i+1)*r.Repeats])
			if err != nil {
				return nil, err
			}
			m.score = m.collisionRate
			if r.Objective == SearchQoF {
				m.score = qofDrop(m, baseline)
			}
			scores[i] = m.score
			metricsByKey[vecKey(batch[i])] = m
		}
		return scores, nil
	}

	// Baseline first: the default-difficulty world under the same seeds. The
	// QoF objective is defined relative to it, and the frontier reports it
	// either way.
	baseSpecs := make([]Spec, r.Repeats)
	for rep := 0; rep < r.Repeats; rep++ {
		baseSpecs[rep] = r.candidateSpec(env.DefaultKnobs(), rep)
	}
	baseResults, err := exec.run(ctx, baseSpecs)
	if err != nil {
		return nil, fmt.Errorf("mavbench: search baseline failed: %w", err)
	}
	baseline, err = aggregate(baseResults)
	if err != nil {
		return nil, err
	}
	baseline.score = baseline.collisionRate
	if r.Objective == SearchQoF {
		baseline.score = qofDrop(baseline, baseline)
	}

	opt, err := search.Maximize(ctx, search.Config{
		Space:       search.DefaultSpace(),
		Population:  r.Population,
		Elites:      r.Elites,
		Generations: r.Generations,
		Seed:        r.Seed,
	}, evaluate)
	if err != nil {
		return nil, err
	}

	f := &Frontier{
		Workload:  r.Workload,
		Family:    r.Family,
		Cores:     r.Cores,
		FreqGHz:   r.FreqGHz,
		Objective: r.Objective,
		Seed:      r.Seed,
		Budget: SearchBudget{
			Generations: r.Generations,
			Population:  r.Population,
			Elites:      r.Elites,
			Repeats:     r.Repeats,
		},
		TotalRuns: opt.Evaluations*r.Repeats + r.Repeats,
	}
	f.Baseline, err = candidate(search.VectorFromKnobs(env.DefaultKnobs()), baseline, cal)
	if err != nil {
		return nil, err
	}
	f.Best, err = candidate(opt.Best.Vector, metricsByKey[vecKey(opt.Best.Vector)], cal)
	if err != nil {
		return nil, err
	}
	for _, g := range opt.Generations {
		best, err := candidate(g.Best.Vector, metricsByKey[vecKey(g.Best.Vector)], cal)
		if err != nil {
			return nil, err
		}
		f.Generations = append(f.Generations, FrontierGeneration{
			Index:     g.Index,
			Best:      best,
			BestScore: g.Best.Score,
			MeanScore: g.MeanScore,
		})
	}
	return f, nil
}

// aggregate folds one candidate's mission results into metrics, failing the
// search loudly if any run errored (an erroring candidate would silently
// score 0 and corrupt the frontier).
func aggregate(results []Result) (candMetrics, error) {
	var collisions, minutes, speed float64
	successes := 0
	for _, res := range results {
		if err := res.Err(); err != nil {
			return candMetrics{}, fmt.Errorf("mavbench: search run %s failed: %w", res.SpecHash, err)
		}
		collisions += res.Report.Counters["collisions"]
		minutes += res.Report.MissionTimeS / 60
		speed += res.Report.AverageSpeed
		if res.Report.Success {
			successes++
		}
	}
	m := candMetrics{}
	if minutes > 0 {
		m.collisionRate = collisions / minutes
	}
	if n := len(results); n > 0 {
		m.successRate = float64(successes) / float64(n)
		m.avgSpeed = speed / float64(n)
	}
	return m, nil
}

// qofDrop is the composite quality-of-flight degradation objective: collision
// rate, plus 2× the failed-mission fraction, plus the relative velocity drop
// against the default-difficulty baseline.
func qofDrop(m, baseline candMetrics) float64 {
	score := m.collisionRate + 2*(1-m.successRate)
	if baseline.avgSpeed > 0 && m.avgSpeed < baseline.avgSpeed {
		score += (baseline.avgSpeed - m.avgSpeed) / baseline.avgSpeed
	}
	return score
}

// candidate assembles the public form of one scored vector, attaching its
// calibrated difficulty.
func candidate(v []float64, m candMetrics, cal *search.Calibrator) (FrontierCandidate, error) {
	k := search.KnobsFromVector(v)
	d, err := cal.Difficulty(k)
	if err != nil {
		return FrontierCandidate{}, err
	}
	return FrontierCandidate{
		Knobs:                knobsFromEnv(k),
		Score:                m.score,
		CollisionRate:        m.collisionRate,
		SuccessRate:          m.successRate,
		AvgSpeedMPS:          m.avgSpeed,
		CalibratedDifficulty: d,
	}, nil
}

// vecKey is the map key of a quantized candidate vector.
func vecKey(v []float64) string {
	var b strings.Builder
	for i, x := range v {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.FormatFloat(x, 'g', -1, 64))
	}
	return b.String()
}
