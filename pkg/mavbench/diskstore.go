package mavbench

import (
	"container/list"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// DiskStore is a persistent, content-addressed ResultStore: one JSON file per
// spec hash under a directory, written atomically (temp file + rename), with
// an optional least-recently-used size bound. Because writes are atomic and
// reads tolerate missing or corrupt files, one directory can safely be shared
// by every process of a mavbenchd fleet (coordinator and workers on a common
// filesystem): a spec simulated anywhere in the fleet is served from disk
// everywhere else.
//
// The LRU bound is enforced per process and is therefore approximate across
// a fleet: each process evicts from its own view of the directory (refreshed
// on eviction), so the directory may transiently exceed the bound while
// several processes write at once. Recency is shared through file
// modification times, which Get refreshes best-effort.
type DiskStore struct {
	dir      string
	maxBytes int64

	mu              sync.Mutex
	byKey           map[string]*list.Element // hash -> entry; front of lru = most recent
	lru             *list.List               // of *diskEntry
	total           int64
	evictsSinceScan int       // evictions since the last directory rescan
	lastTouch       time.Time // high-water mark for strictly-increasing mtimes
}

type diskEntry struct {
	hash string
	size int64
}

// DiskStoreOption configures a DiskStore.
type DiskStoreOption func(*DiskStore)

// WithMaxBytes bounds the store's total size on disk: once the bound is
// exceeded, least-recently-used entries are evicted (the most recent entry is
// always kept, even if it alone exceeds the bound). n <= 0 means unbounded.
func WithMaxBytes(n int64) DiskStoreOption {
	return func(s *DiskStore) { s.maxBytes = n }
}

// NewDiskStore opens (creating if needed) a disk-backed result store rooted
// at dir and indexes the entries already present, oldest first. Temp files
// orphaned by crashed writers are swept out.
func NewDiskStore(dir string, opts ...DiskStoreOption) (*DiskStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("mavbench: creating result store dir: %w", err)
	}
	s := &DiskStore{dir: dir, byKey: map[string]*list.Element{}, lru: list.New()}
	for _, opt := range opts {
		opt(s)
	}
	sweepOrphanedTemps(dir)
	for _, e := range scanStoreDir(dir) {
		s.byKey[e.entry.hash] = s.lru.PushFront(e.entry)
		s.total += e.entry.size
	}
	return s, nil
}

// orphanTempAge is how old a .put-*.tmp file must be before it is considered
// abandoned by a crashed writer. Live writes hold their temp file for
// milliseconds; the margin protects concurrent writers in a shared fleet
// directory.
const orphanTempAge = 15 * time.Minute

// sweepOrphanedTemps removes stale temp files so crashed writers cannot grow
// the directory past the size bound forever.
func sweepOrphanedTemps(dir string) {
	dirents, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, de := range dirents {
		name := de.Name()
		if de.IsDir() || !strings.HasPrefix(name, ".put-") || !strings.HasSuffix(name, ".tmp") {
			continue
		}
		info, err := de.Info()
		if err != nil || time.Since(info.ModTime()) < orphanTempAge {
			continue
		}
		_ = os.Remove(filepath.Join(dir, name))
	}
}

// scannedEntry pairs a store entry with its file mtime for recency ordering.
type scannedEntry struct {
	entry *diskEntry
	mtime time.Time
}

// scanStoreDir lists the result files under dir ordered oldest-mtime first,
// ignoring temp files and anything that is not a hash-named result.
func scanStoreDir(dir string) []scannedEntry {
	dirents, err := os.ReadDir(dir)
	if err != nil {
		return nil
	}
	var out []scannedEntry
	for _, de := range dirents {
		hash, ok := strings.CutSuffix(de.Name(), ".json")
		if !ok || !validStoreHash(hash) || de.IsDir() {
			continue
		}
		info, err := de.Info()
		if err != nil {
			continue
		}
		out = append(out, scannedEntry{&diskEntry{hash: hash, size: info.Size()}, info.ModTime()})
	}
	// Filesystems with coarse timestamp granularity can report equal mtimes
	// for files touched close together; the hash tie-break keeps the recency
	// order (and therefore eviction order) deterministic regardless.
	sort.Slice(out, func(i, j int) bool {
		if !out[i].mtime.Equal(out[j].mtime) {
			return out[i].mtime.Before(out[j].mtime)
		}
		return out[i].entry.hash < out[j].entry.hash
	})
	return out
}

// validStoreHash reports whether hash is safe to use as a file name: the
// lowercase hex form Spec.Hash produces. Anything else (path separators,
// "..") is rejected so a hostile hash can never escape the store directory.
func validStoreHash(hash string) bool {
	if len(hash) == 0 || len(hash) > 128 {
		return false
	}
	for _, c := range hash {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func (s *DiskStore) path(hash string) string { return filepath.Join(s.dir, hash+".json") }

// Dir returns the store's root directory.
func (s *DiskStore) Dir() string { return s.dir }

// Get implements ResultStore. A missing or unreadable file is a miss; a
// corrupt (non-JSON) file is a miss and is removed so it cannot shadow a
// future Put. Files written by other processes sharing the directory are
// found even though they are absent from this process's index.
func (s *DiskStore) Get(hash string) (Result, bool) {
	if !validStoreHash(hash) {
		return Result{}, false
	}
	buf, err := os.ReadFile(s.path(hash))
	if err != nil {
		s.drop(hash, false)
		return Result{}, false
	}
	var res Result
	if err := json.Unmarshal(buf, &res); err != nil {
		// Corrupt entry (truncated by a crash, or foreign junk): tolerate it
		// as a miss and clear it out rather than failing the campaign.
		s.drop(hash, true)
		return Result{}, false
	}
	s.touch(hash, int64(len(buf)))
	return res, true
}

// Put implements ResultStore: an atomic write (temp file + rename into
// place), then LRU eviction down to the size bound. Put never fails the
// caller — a store that cannot write degrades to re-simulation, it does not
// break campaigns.
func (s *DiskStore) Put(hash string, res Result) {
	if !validStoreHash(hash) {
		return
	}
	buf, err := json.Marshal(res)
	if err != nil {
		return
	}
	buf = append(buf, '\n')
	tmp, err := os.CreateTemp(s.dir, ".put-*.tmp")
	if err != nil {
		return
	}
	_, werr := tmp.Write(buf)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		_ = os.Remove(tmp.Name())
		return
	}
	if err := os.Rename(tmp.Name(), s.path(hash)); err != nil {
		_ = os.Remove(tmp.Name())
		return
	}
	s.touch(hash, int64(len(buf)))
	s.evict()
}

// Len returns the number of entries in this process's index.
func (s *DiskStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lru.Len()
}

// SizeBytes returns the indexed total size on disk.
func (s *DiskStore) SizeBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total
}

// touch records hash as the most recently used entry of the given size and
// refreshes the file mtime so other processes sharing the directory see the
// recency too. The applied mtime is forced strictly past every mtime this
// process has applied before: filesystems that coarsen timestamps (1s on
// some, 2s on FAT) would otherwise hand identical mtimes to entries touched
// in quick succession and make the recovered eviction order depend on
// directory enumeration.
func (s *DiskStore) touch(hash string, size int64) {
	s.mu.Lock()
	if el, ok := s.byKey[hash]; ok {
		e := el.Value.(*diskEntry)
		s.total += size - e.size
		e.size = size
		s.lru.MoveToFront(el)
	} else {
		s.byKey[hash] = s.lru.PushFront(&diskEntry{hash: hash, size: size})
		s.total += size
	}
	now := time.Now()
	if !now.After(s.lastTouch) {
		now = s.lastTouch.Add(time.Microsecond)
	}
	s.lastTouch = now
	s.mu.Unlock()
	_ = os.Chtimes(s.path(hash), now, now)
}

// drop forgets hash from the index and optionally removes its file.
func (s *DiskStore) drop(hash string, removeFile bool) {
	s.mu.Lock()
	if el, ok := s.byKey[hash]; ok {
		s.total -= el.Value.(*diskEntry).size
		s.lru.Remove(el)
		delete(s.byKey, hash)
	}
	s.mu.Unlock()
	if removeFile {
		_ = os.Remove(s.path(hash))
	}
}

// Hashes returns every hash currently present in the store directory,
// oldest-recency first (mtime order, hash tie-break) — the order a migration
// should replay them in so last-write-wins destinations end up with the same
// recency ranking. The directory is rescanned, so entries written by other
// fleet processes sharing it are included.
func (s *DiskStore) Hashes() []string {
	entries := scanStoreDir(s.dir)
	out := make([]string, len(entries))
	for i, e := range entries {
		out[i] = e.entry.hash
	}
	return out
}

// rescanEvery bounds how many evictions run off the in-memory index before
// the directory is rescanned to pick up entries written by other fleet
// processes. The hot path stays O(entries evicted); the cross-process
// approximation is corrected every so often.
const rescanEvery = 64

// evict deletes least-recently-used entries until the store fits its bound,
// always keeping the most recent entry. Eviction runs off the in-memory
// index; every rescanEvery evictions (and whenever the index alone cannot
// get under the bound) the index is refreshed from the directory so entries
// written by other processes are counted and are candidates, by mtime.
func (s *DiskStore) evict() {
	if s.maxBytes <= 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.total <= s.maxBytes {
		return
	}
	s.evictLocked()
	s.evictsSinceScan++
	if s.evictsSinceScan >= rescanEvery {
		s.evictsSinceScan = 0
		s.rescanLocked()
		s.evictLocked()
	}
}

// evictLocked drops LRU entries (per the in-memory index) until the store
// fits the bound, keeping at least the most recent entry. Caller holds s.mu.
func (s *DiskStore) evictLocked() {
	for s.total > s.maxBytes && s.lru.Len() > 1 {
		el := s.lru.Back()
		e := el.Value.(*diskEntry)
		s.total -= e.size
		s.lru.Remove(el)
		delete(s.byKey, e.hash)
		_ = os.Remove(s.path(e.hash))
	}
}

// rescanLocked rebuilds the index from the directory — other fleet processes
// may have added or removed entries since we last looked. Caller holds s.mu.
func (s *DiskStore) rescanLocked() {
	sweepOrphanedTemps(s.dir)
	s.byKey = map[string]*list.Element{}
	s.lru.Init()
	s.total = 0
	for _, e := range scanStoreDir(s.dir) {
		s.byKey[e.entry.hash] = s.lru.PushFront(e.entry)
		s.total += e.entry.size
	}
}
