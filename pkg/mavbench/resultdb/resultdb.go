// Package resultdb is the segmented analytics result store: a compacting,
// append-only backend for the mavbench.ResultStore interface that scales
// past DiskStore's one-file-per-hash layout and adds the query surface the
// paper's QoF-versus-compute studies (MAVBench, Boroujerdian et al.,
// MICRO 2018, Figures 10-15) need.
//
// # Layout
//
// A store directory holds numbered NDJSON segments:
//
//	seg-000001.ndjson
//	seg-000002.ndjson        <- highest number = active (append) segment
//
// Each line is one record, {"hash": "<spec-hash>", "result": {...}}. Writes
// append to the active segment; when it reaches the target size, the store
// rotates to a fresh segment. The full index (hash -> segment/offset, plus
// the filterable spec fields) lives in memory and is rebuilt by scanning the
// segments on Open.
//
// Updating a hash appends a new record and marks the old one dead
// (last-write-wins); dead records are reclaimed by compaction, which
// rewrites live records into fresh segments and deletes the old files.
// Compaction runs in the background once dead bytes outweigh live bytes,
// or on demand via Compact (and `mavbench-store compact`).
//
// # Crash tolerance
//
// The store inherits DiskStore's contract: corruption is tolerated, never
// fatal. A torn tail (crash mid-append) is truncated away on Open; a corrupt
// interior line is skipped and counted; compacted segments are published by
// atomic rename, and a crash between publishing them and deleting their
// predecessors is healed by last-write-wins on the next Open. Unlike
// DiskStore, a segment directory must be owned by a single process at a time
// — fleet members each point at their own store, or share one through a
// coordinator.
package resultdb

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"mavbench/pkg/mavbench"
)

// record is the wire form of one segment line.
type record struct {
	Hash   string          `json:"hash"`
	Result mavbench.Result `json:"result"`
}

// recMeta is the in-memory, filterable summary of a stored result.
type recMeta struct {
	workload   string
	scenario   string
	difficulty float64
	cores      int
	freqGHz    float64
	ok         bool
}

// recLoc locates a live record inside the segment files.
type recLoc struct {
	seg  int
	off  int64
	size int64
	meta recMeta
}

// segInfo is per-segment accounting.
type segInfo struct {
	live int64 // live records in this segment
	size int64 // bytes on disk
}

// Stats is a point-in-time snapshot of the store.
type Stats struct {
	// Segments is the number of segment files (including the active one).
	Segments int `json:"segments"`
	// Records is the number of live (addressable) records.
	Records int `json:"records"`
	// LiveBytes and DeadBytes partition the on-disk bytes into reachable
	// records and garbage awaiting compaction.
	LiveBytes int64 `json:"live_bytes"`
	DeadBytes int64 `json:"dead_bytes"`
	// Compactions counts completed compaction runs.
	Compactions int64 `json:"compactions"`
	// CorruptDropped counts interior lines skipped as unparseable on Open.
	CorruptDropped int64 `json:"corrupt_dropped"`
	// TornTailDropped counts partial trailing records truncated on Open.
	TornTailDropped int64 `json:"torn_tail_dropped"`
}

// Option configures a Store at Open.
type Option func(*Store)

// WithSegmentTargetBytes sets the segment rotation size (default 4 MiB).
func WithSegmentTargetBytes(n int64) Option {
	return func(s *Store) {
		if n > 0 {
			s.targetBytes = n
		}
	}
}

// WithAutoCompact enables or disables background compaction (default on).
// Compact can always be called explicitly.
func WithAutoCompact(on bool) Option {
	return func(s *Store) { s.autoCompact = on }
}

// Store is the segmented result store. It implements mavbench.ResultStore
// and is safe for concurrent use. Construct with Open; Close releases the
// file handles (records are durable after every Put regardless).
type Store struct {
	dir         string
	targetBytes int64
	autoCompact bool

	mu         sync.Mutex
	index      map[string]recLoc
	segs       map[int]*segInfo
	readers    map[int]*os.File
	active     *os.File
	activeID   int
	activeSize int64
	liveBytes  int64
	deadBytes  int64

	compactions int64
	corrupt     int64
	tornTail    int64
	compacting  bool
	closed      bool
}

// Open opens (creating if needed) a segment store rooted at dir, rebuilding
// the index by scanning every segment. Torn tails are truncated, corrupt
// interior lines skipped, duplicate hashes resolved last-write-wins (later
// segments win). Leftover temp files from a crashed compaction are removed.
func Open(dir string, opts ...Option) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("resultdb: creating store dir: %w", err)
	}
	s := &Store{
		dir:         dir,
		targetBytes: 4 << 20,
		autoCompact: true,
		index:       map[string]recLoc{},
		segs:        map[int]*segInfo{},
		readers:     map[int]*os.File{},
	}
	for _, opt := range opts {
		opt(s)
	}
	if err := s.load(); err != nil {
		return nil, err
	}
	return s, nil
}

// segName formats a segment id as its file name.
func segName(id int) string { return fmt.Sprintf("seg-%06d.ndjson", id) }

// parseSegName inverts segName; ok is false for anything else.
func parseSegName(name string) (int, bool) {
	rest, found := strings.CutPrefix(name, "seg-")
	if !found {
		return 0, false
	}
	rest, found = strings.CutSuffix(rest, ".ndjson")
	if !found {
		return 0, false
	}
	id, err := strconv.Atoi(rest)
	if err != nil || id <= 0 {
		return 0, false
	}
	return id, true
}

// load scans the directory and rebuilds the index.
func (s *Store) load() error {
	dirents, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("resultdb: reading store dir: %w", err)
	}
	var ids []int
	for _, de := range dirents {
		name := de.Name()
		if de.IsDir() {
			continue
		}
		if strings.HasSuffix(name, ".tmp") {
			// A crashed compaction's unpublished output: stale, remove.
			_ = os.Remove(filepath.Join(s.dir, name))
			continue
		}
		if id, ok := parseSegName(name); ok {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	for i, id := range ids {
		if err := s.scanSegment(id, i == len(ids)-1); err != nil {
			return err
		}
	}
	s.activeID = 1
	if n := len(ids); n > 0 {
		s.activeID = ids[n-1]
	}
	return s.openActive()
}

// scanSegment indexes one segment file. last marks the newest segment, whose
// torn tail (if any) is truncated so future appends start on a record
// boundary.
func (s *Store) scanSegment(id int, last bool) error {
	path := filepath.Join(s.dir, segName(id))
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("resultdb: opening %s: %w", segName(id), err)
	}
	info := &segInfo{}
	s.segs[id] = info
	br := bufio.NewReaderSize(f, 256<<10)
	var off int64
	for {
		line, rerr := br.ReadBytes('\n')
		if rerr != nil && rerr != io.EOF {
			f.Close()
			return fmt.Errorf("resultdb: reading %s: %w", segName(id), rerr)
		}
		if rerr == io.EOF {
			if len(line) > 0 {
				// Torn tail: a crash interrupted the final append. Drop the
				// partial record; on the active segment also truncate it away
				// so the next append cannot splice into it.
				s.tornTail++
				if last {
					if terr := os.Truncate(path, off); terr != nil {
						f.Close()
						return fmt.Errorf("resultdb: truncating torn tail of %s: %w", segName(id), terr)
					}
				} else {
					s.deadBytes += int64(len(line))
					info.size += int64(len(line))
				}
			}
			break
		}
		n := int64(len(line))
		var rec record
		if uerr := json.Unmarshal(line, &rec); uerr != nil || !validHash(rec.Hash) {
			// Corrupt interior line (torn record healed over by later
			// appends, or foreign junk): skip it, never crash.
			s.corrupt++
			s.deadBytes += n
			info.size += n
			off += n
			continue
		}
		if old, ok := s.index[rec.Hash]; ok {
			s.killLocked(old) // duplicate: the later record wins
		}
		s.index[rec.Hash] = recLoc{seg: id, off: off, size: n, meta: metaOf(rec.Result)}
		info.live++
		info.size += n
		s.liveBytes += n
		off += n
	}
	f.Close()
	return nil
}

// openActive opens the append handle for the active segment.
func (s *Store) openActive() error {
	f, err := os.OpenFile(filepath.Join(s.dir, segName(s.activeID)),
		os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("resultdb: opening active segment: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("resultdb: active segment: %w", err)
	}
	s.active = f
	s.activeSize = st.Size()
	if _, ok := s.segs[s.activeID]; !ok {
		s.segs[s.activeID] = &segInfo{}
	}
	return nil
}

// validHash mirrors DiskStore's check: lowercase hex only, bounded length —
// hashes are file-system- and wire-safe by construction.
func validHash(hash string) bool {
	if len(hash) == 0 || len(hash) > 128 {
		return false
	}
	for _, c := range hash {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// metaOf extracts the filterable fields from a result's canonical spec.
func metaOf(res mavbench.Result) recMeta {
	return recMeta{
		workload:   res.Spec.Workload,
		scenario:   res.Spec.Scenario,
		difficulty: res.Spec.Difficulty,
		cores:      res.Spec.Cores,
		freqGHz:    res.Spec.FreqGHz,
		ok:         res.Error == "",
	}
}

// killLocked retires a live record location. Caller holds s.mu.
func (s *Store) killLocked(loc recLoc) {
	s.liveBytes -= loc.size
	s.deadBytes += loc.size
	if info, ok := s.segs[loc.seg]; ok {
		info.live--
	}
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Len returns the number of live records.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// Get implements mavbench.ResultStore. A missing hash, unreadable segment or
// undecodable record is a miss, never an error.
func (s *Store) Get(hash string) (mavbench.Result, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	loc, ok := s.index[hash]
	if !ok || s.closed {
		return mavbench.Result{}, false
	}
	rec, err := s.readLocked(loc)
	if err != nil {
		return mavbench.Result{}, false
	}
	return rec.Result, true
}

// readLocked reads and decodes one record. Caller holds s.mu.
func (s *Store) readLocked(loc recLoc) (record, error) {
	r, err := s.readerLocked(loc.seg)
	if err != nil {
		return record{}, err
	}
	buf := make([]byte, loc.size)
	if _, err := r.ReadAt(buf, loc.off); err != nil {
		return record{}, err
	}
	var rec record
	if err := json.Unmarshal(buf, &rec); err != nil {
		return record{}, err
	}
	return rec, nil
}

// readerLocked returns (lazily opening) the read handle for a segment.
// Caller holds s.mu.
func (s *Store) readerLocked(id int) (*os.File, error) {
	if r, ok := s.readers[id]; ok {
		return r, nil
	}
	r, err := os.Open(filepath.Join(s.dir, segName(id)))
	if err != nil {
		return nil, err
	}
	s.readers[id] = r
	return r, nil
}

// Put implements mavbench.ResultStore: append to the active segment (rotating
// past the target size), update the index last-write-wins, and trigger
// background compaction when garbage outweighs live data. Put never fails
// the caller — a store that cannot write degrades to re-simulation.
func (s *Store) Put(hash string, res mavbench.Result) {
	if !validHash(hash) {
		return
	}
	line, err := json.Marshal(record{Hash: hash, Result: res})
	if err != nil {
		return
	}
	line = append(line, '\n')
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	if s.activeSize > 0 && s.activeSize+int64(len(line)) > s.targetBytes {
		if err := s.rotateLocked(); err != nil {
			s.mu.Unlock()
			return
		}
	}
	off := s.activeSize
	n, werr := s.active.Write(line)
	s.activeSize += int64(n)
	s.segs[s.activeID].size += int64(n)
	if werr != nil || n != len(line) {
		// Partial append: whatever landed is garbage. The torn bytes are
		// counted dead now and healed (skipped or truncated) on next Open.
		s.deadBytes += int64(n)
		s.mu.Unlock()
		return
	}
	if old, ok := s.index[hash]; ok {
		s.killLocked(old)
	}
	s.index[hash] = recLoc{seg: s.activeID, off: off, size: int64(n), meta: metaOf(res)}
	s.segs[s.activeID].live++
	s.liveBytes += int64(n)
	trigger := s.shouldCompactLocked()
	if trigger {
		s.compacting = true
	}
	s.mu.Unlock()
	if trigger {
		go func() {
			defer func() { recover() }() // compaction must never crash a campaign
			s.mu.Lock()
			defer s.mu.Unlock()
			_ = s.compactLocked()
			s.compacting = false
		}()
	}
}

// rotateLocked closes the active segment and starts the next one.
// Caller holds s.mu.
func (s *Store) rotateLocked() error {
	if err := s.active.Close(); err != nil {
		return err
	}
	s.activeID++
	return s.openActive()
}

// compactMinDeadBytes keeps background compaction from churning on tiny
// stores; explicit Compact calls ignore it.
const compactMinDeadBytes = 256 << 10

// shouldCompactLocked reports whether background compaction is warranted.
// Caller holds s.mu.
func (s *Store) shouldCompactLocked() bool {
	return s.autoCompact && !s.compacting &&
		s.deadBytes >= compactMinDeadBytes && s.deadBytes > s.liveBytes
}

// Compact rewrites every live record into fresh segments and deletes the old
// files, reclaiming dead bytes. Safe to call any time; concurrent reads and
// writes block for its duration.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.compactLocked()
}

// compactLocked does the rewrite. Caller holds s.mu.
//
// Crash safety: compacted segments are written to temp files and published
// by rename with ids strictly greater than every existing segment, so a
// crash at any point leaves a directory whose scan order (old segments
// first, compacted copies later, last-write-wins) reproduces the same live
// set; old segments are deleted only after every compacted segment is
// published.
func (s *Store) compactLocked() error {
	if s.closed {
		return fmt.Errorf("resultdb: store is closed")
	}
	// Snapshot the live set in stable (segment, offset) order.
	hashes := make([]string, 0, len(s.index))
	for h := range s.index {
		hashes = append(hashes, h)
	}
	sort.Slice(hashes, func(i, j int) bool {
		a, b := s.index[hashes[i]], s.index[hashes[j]]
		if a.seg != b.seg {
			return a.seg < b.seg
		}
		return a.off < b.off
	})

	oldIDs := make([]int, 0, len(s.segs))
	for id := range s.segs {
		oldIDs = append(oldIDs, id)
	}
	sort.Ints(oldIDs)

	newID := s.activeID // ids for compacted output start after the active segment
	newIndex := map[string]recLoc{}
	newSegs := map[int]*segInfo{}
	var liveBytes int64
	var out *os.File
	var outID int
	var outSize int64
	var published []int

	finishSeg := func() error {
		if out == nil {
			return nil
		}
		name := out.Name()
		if err := out.Close(); err != nil {
			os.Remove(name)
			return err
		}
		if err := os.Rename(name, filepath.Join(s.dir, segName(outID))); err != nil {
			os.Remove(name)
			return err
		}
		published = append(published, outID)
		out = nil
		return nil
	}
	fail := func(err error) error {
		if out != nil {
			name := out.Name()
			out.Close()
			os.Remove(name)
		}
		for _, id := range published {
			_ = os.Remove(filepath.Join(s.dir, segName(id)))
		}
		return fmt.Errorf("resultdb: compaction failed: %w", err)
	}

	for _, h := range hashes {
		rec, err := s.readLocked(s.index[h])
		if err != nil {
			// A record we cannot read back is dropped — the same tolerance
			// Open applies to corruption.
			s.corrupt++
			continue
		}
		line, err := json.Marshal(rec)
		if err != nil {
			s.corrupt++
			continue
		}
		line = append(line, '\n')
		if out != nil && outSize+int64(len(line)) > s.targetBytes {
			if err := finishSeg(); err != nil {
				return fail(err)
			}
		}
		if out == nil {
			newID++
			outID = newID
			outSize = 0
			f, err := os.CreateTemp(s.dir, ".seg-*.tmp")
			if err != nil {
				return fail(err)
			}
			out = f
			newSegs[outID] = &segInfo{}
		}
		n, err := out.Write(line)
		if err != nil || n != len(line) {
			return fail(fmt.Errorf("writing compacted segment: %w", err))
		}
		newIndex[h] = recLoc{seg: outID, off: outSize, size: int64(n), meta: s.index[h].meta}
		newSegs[outID].live++
		newSegs[outID].size += int64(n)
		outSize += int64(n)
		liveBytes += int64(n)
	}
	if err := finishSeg(); err != nil {
		return fail(err)
	}

	// Every compacted segment is published: retire the old generation.
	for _, r := range s.readers {
		r.Close()
	}
	s.readers = map[int]*os.File{}
	s.active.Close()
	for _, id := range oldIDs {
		_ = os.Remove(filepath.Join(s.dir, segName(id)))
	}

	s.index = newIndex
	s.segs = newSegs
	s.liveBytes = liveBytes
	s.deadBytes = 0
	s.compactions++
	// Resume appends on a fresh segment after the compacted ones.
	s.activeID = newID + 1
	return s.openActive()
}

// Stats returns a snapshot of the store counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Segments:        len(s.segs),
		Records:         len(s.index),
		LiveBytes:       s.liveBytes,
		DeadBytes:       s.deadBytes,
		Compactions:     s.compactions,
		CorruptDropped:  s.corrupt,
		TornTailDropped: s.tornTail,
	}
}

// Close releases the store's file handles. Further Gets miss and Puts are
// dropped; every completed Put is already on disk.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	for _, r := range s.readers {
		r.Close()
	}
	s.readers = map[int]*os.File{}
	if s.active != nil {
		return s.active.Close()
	}
	return nil
}
