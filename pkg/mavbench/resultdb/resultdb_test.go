package resultdb

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"mavbench/pkg/mavbench"
)

var _ mavbench.ResultStore = (*Store)(nil)

// testHash returns a distinct valid store hash for index i.
func testHash(i int) string { return fmt.Sprintf("%064d", i) }

// testResult builds a distinguishable result for index i.
func testResult(i int) mavbench.Result {
	res := mavbench.Result{
		Index:    i,
		SpecHash: testHash(i),
		Spec: mavbench.Spec{
			Workload:   "scanning",
			Scenario:   "farm",
			Difficulty: 0.5,
			Cores:      1 + i%4,
			FreqGHz:    0.5 + 0.5*float64(i%5),
			Seed:       int64(i),
		},
		Platform: "tx2",
	}
	res.Report.MissionTimeS = float64(i) * 1.5
	res.Report.TotalEnergyKJ = float64(i) * 0.25
	res.Report.Success = true
	return res
}

func openTestStore(t *testing.T, dir string, opts ...Option) *Store {
	t.Helper()
	s, err := Open(dir, opts...)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// sameResult compares results through a JSON round-trip (the unexported err
// field never serializes).
func sameResult(a, b mavbench.Result) bool {
	aj, _ := json.Marshal(a)
	bj, _ := json.Marshal(b)
	return string(aj) == string(bj)
}

func TestPutGetRoundTrip(t *testing.T) {
	s := openTestStore(t, t.TempDir())
	for i := 0; i < 10; i++ {
		s.Put(testHash(i), testResult(i))
	}
	if got := s.Len(); got != 10 {
		t.Fatalf("Len = %d, want 10", got)
	}
	for i := 0; i < 10; i++ {
		got, ok := s.Get(testHash(i))
		if !ok {
			t.Fatalf("Get(%d) missed", i)
		}
		if !sameResult(got, testResult(i)) {
			t.Fatalf("Get(%d) = %+v, want %+v", i, got, testResult(i))
		}
	}
	if _, ok := s.Get(testHash(99)); ok {
		t.Fatal("Get of unknown hash hit")
	}
	if _, ok := s.Get("../escape"); ok {
		t.Fatal("Get of invalid hash hit")
	}
	s.Put("NOT-A-HASH", testResult(0))
	if got := s.Len(); got != 10 {
		t.Fatalf("invalid-hash Put changed Len to %d", got)
	}
}

func TestReopenRebuildsIndex(t *testing.T) {
	dir := t.TempDir()
	s := openTestStore(t, dir)
	for i := 0; i < 25; i++ {
		s.Put(testHash(i), testResult(i))
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	s2 := openTestStore(t, dir)
	if got := s2.Len(); got != 25 {
		t.Fatalf("reopened Len = %d, want 25", got)
	}
	for i := 0; i < 25; i++ {
		got, ok := s2.Get(testHash(i))
		if !ok || !sameResult(got, testResult(i)) {
			t.Fatalf("reopened Get(%d): ok=%v", i, ok)
		}
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	s := openTestStore(t, dir, WithSegmentTargetBytes(1024))
	for i := 0; i < 40; i++ {
		s.Put(testHash(i), testResult(i))
	}
	st := s.Stats()
	if st.Segments < 2 {
		t.Fatalf("Segments = %d, want rotation past 1", st.Segments)
	}
	if st.Records != 40 {
		t.Fatalf("Records = %d, want 40", st.Records)
	}
	// Every record remains reachable across the segment boundary, including
	// after a reopen.
	s.Close()
	s2 := openTestStore(t, dir, WithSegmentTargetBytes(1024))
	for i := 0; i < 40; i++ {
		if _, ok := s2.Get(testHash(i)); !ok {
			t.Fatalf("Get(%d) missed after rotation + reopen", i)
		}
	}
}

func TestLastWriteWins(t *testing.T) {
	dir := t.TempDir()
	s := openTestStore(t, dir, WithSegmentTargetBytes(512))
	old := testResult(0)
	s.Put(testHash(0), old)
	updated := testResult(0)
	updated.Report.MissionTimeS = 777
	// Push the overwrite into a later segment so reopen exercises the
	// cross-segment duplicate path.
	for i := 1; i < 20; i++ {
		s.Put(testHash(i), testResult(i))
	}
	s.Put(testHash(0), updated)
	check := func(s *Store, label string) {
		got, ok := s.Get(testHash(0))
		if !ok || got.Report.MissionTimeS != 777 {
			t.Fatalf("%s: Get returned ok=%v MissionTimeS=%v, want updated record", label, ok, got.Report.MissionTimeS)
		}
		if s.Len() != 20 {
			t.Fatalf("%s: Len = %d, want 20", label, s.Len())
		}
	}
	check(s, "live")
	if s.Stats().DeadBytes == 0 {
		t.Fatal("overwrite did not account dead bytes")
	}
	s.Close()
	check(openTestStore(t, dir, WithSegmentTargetBytes(512)), "reopened")
}

func TestTornTailTruncatedOnOpen(t *testing.T) {
	dir := t.TempDir()
	s := openTestStore(t, dir)
	for i := 0; i < 5; i++ {
		s.Put(testHash(i), testResult(i))
	}
	s.Close()
	// Simulate a crash mid-append: a partial record with no trailing newline.
	seg := filepath.Join(dir, segName(1))
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"hash":"deadbeef","result":{"spec_ha`)
	f.Close()
	before, _ := os.Stat(seg)

	s2 := openTestStore(t, dir)
	st := s2.Stats()
	if st.TornTailDropped != 1 {
		t.Fatalf("TornTailDropped = %d, want 1", st.TornTailDropped)
	}
	if st.Records != 5 {
		t.Fatalf("Records = %d, want 5", st.Records)
	}
	after, _ := os.Stat(seg)
	if after.Size() >= before.Size() {
		t.Fatalf("torn tail not truncated: %d -> %d bytes", before.Size(), after.Size())
	}
	// Appends after the truncation start on a record boundary.
	s2.Put(testHash(9), testResult(9))
	s2.Close()
	s3 := openTestStore(t, dir)
	if st := s3.Stats(); st.Records != 6 || st.CorruptDropped != 0 || st.TornTailDropped != 0 {
		t.Fatalf("post-heal stats = %+v, want 6 clean records", st)
	}
}

func TestCorruptInteriorLineSkipped(t *testing.T) {
	dir := t.TempDir()
	good1, _ := json.Marshal(record{Hash: testHash(1), Result: testResult(1)})
	good2, _ := json.Marshal(record{Hash: testHash(2), Result: testResult(2)})
	content := string(good1) + "\n" + "{torn garbage record!!\n" + string(good2) + "\n"
	if err := os.WriteFile(filepath.Join(dir, segName(1)), []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	s := openTestStore(t, dir)
	st := s.Stats()
	if st.CorruptDropped != 1 {
		t.Fatalf("CorruptDropped = %d, want 1", st.CorruptDropped)
	}
	if st.Records != 2 {
		t.Fatalf("Records = %d, want 2", st.Records)
	}
	for _, i := range []int{1, 2} {
		if got, ok := s.Get(testHash(i)); !ok || !sameResult(got, testResult(i)) {
			t.Fatalf("record %d lost around corrupt line (ok=%v)", i, ok)
		}
	}
}

func TestDuplicateHashAcrossManualSegments(t *testing.T) {
	dir := t.TempDir()
	older := testResult(0)
	newer := testResult(0)
	newer.Report.MissionTimeS = 4242
	l1, _ := json.Marshal(record{Hash: testHash(0), Result: older})
	l2, _ := json.Marshal(record{Hash: testHash(0), Result: newer})
	os.WriteFile(filepath.Join(dir, segName(1)), append(l1, '\n'), 0o644)
	os.WriteFile(filepath.Join(dir, segName(2)), append(l2, '\n'), 0o644)
	s := openTestStore(t, dir)
	got, ok := s.Get(testHash(0))
	if !ok || got.Report.MissionTimeS != 4242 {
		t.Fatalf("duplicate resolution: ok=%v MissionTimeS=%v, want later segment to win", ok, got.Report.MissionTimeS)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
}

func TestCompactReclaimsDeadBytes(t *testing.T) {
	dir := t.TempDir()
	s := openTestStore(t, dir, WithSegmentTargetBytes(1024), WithAutoCompact(false))
	// Overwrite a small key set many times: most bytes end up dead.
	for round := 0; round < 20; round++ {
		for i := 0; i < 8; i++ {
			res := testResult(i)
			res.Report.MissionTimeS = float64(round)
			s.Put(testHash(i), res)
		}
	}
	pre := s.Stats()
	if pre.DeadBytes == 0 || pre.Segments < 2 {
		t.Fatalf("precondition: stats %+v should have garbage across segments", pre)
	}
	if err := s.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	post := s.Stats()
	if post.DeadBytes != 0 {
		t.Fatalf("DeadBytes = %d after compaction, want 0", post.DeadBytes)
	}
	if post.Records != 8 {
		t.Fatalf("Records = %d after compaction, want 8", post.Records)
	}
	if post.Compactions != 1 {
		t.Fatalf("Compactions = %d, want 1", post.Compactions)
	}
	if post.LiveBytes >= pre.LiveBytes+pre.DeadBytes {
		t.Fatalf("compaction did not shrink the store: live %d, was %d live + %d dead",
			post.LiveBytes, pre.LiveBytes, pre.DeadBytes)
	}
	for i := 0; i < 8; i++ {
		got, ok := s.Get(testHash(i))
		if !ok || got.Report.MissionTimeS != 19 {
			t.Fatalf("record %d wrong after compaction: ok=%v MissionTimeS=%v", i, ok, got.Report.MissionTimeS)
		}
	}
	// Writes continue on a fresh segment and everything survives reopen.
	s.Put(testHash(100), testResult(100))
	s.Close()
	s2 := openTestStore(t, dir)
	if s2.Len() != 9 {
		t.Fatalf("reopened Len = %d, want 9", s2.Len())
	}
	if got, ok := s2.Get(testHash(100)); !ok || !sameResult(got, testResult(100)) {
		t.Fatal("post-compaction write lost on reopen")
	}
	// No temp files left behind.
	dirents, _ := os.ReadDir(dir)
	for _, de := range dirents {
		if strings.HasSuffix(de.Name(), ".tmp") {
			t.Fatalf("compaction left temp file %s", de.Name())
		}
	}
}

func TestAutoCompactTriggers(t *testing.T) {
	dir := t.TempDir()
	s := openTestStore(t, dir, WithSegmentTargetBytes(64<<10))
	// Bulk up each record so dead bytes cross the background threshold
	// quickly: ~2.5 KiB of trace payload per record.
	big := testResult(0)
	big.Report.Counters = map[string]float64{}
	for i := 0; i < 100; i++ {
		big.Report.Counters[fmt.Sprintf("counter_%04d", i)] = float64(i)
	}
	for round := 0; round < 220; round++ {
		big.Report.MissionTimeS = float64(round)
		s.Put(testHash(0), big)
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().Compactions == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("background compaction never ran: stats %+v", s.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
	got, ok := s.Get(testHash(0))
	if !ok || got.Report.MissionTimeS != 219 {
		t.Fatalf("latest record wrong after auto compaction: ok=%v MissionTimeS=%v", ok, got.Report.MissionTimeS)
	}
}

func TestCloseDropsOperations(t *testing.T) {
	dir := t.TempDir()
	s := openTestStore(t, dir)
	s.Put(testHash(0), testResult(0))
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, ok := s.Get(testHash(0)); ok {
		t.Fatal("Get hit after Close")
	}
	s.Put(testHash(1), testResult(1))
	if err := s.Compact(); err == nil {
		t.Fatal("Compact after Close should error")
	}
	s2 := openTestStore(t, dir)
	if s2.Len() != 1 {
		t.Fatalf("post-Close Put leaked: Len = %d, want 1", s2.Len())
	}
}

func TestQueryFilters(t *testing.T) {
	s := openTestStore(t, t.TempDir())
	mk := func(i int, workload, scenario string, diff float64, cores int, freq float64, errMsg string) {
		res := testResult(i)
		res.Spec.Workload = workload
		res.Spec.Scenario = scenario
		res.Spec.Difficulty = diff
		res.Spec.Cores = cores
		res.Spec.FreqGHz = freq
		res.Error = errMsg
		s.Put(testHash(i), res)
	}
	mk(0, "scanning", "farm", 0.2, 1, 0.8, "")
	mk(1, "scanning", "farm", 0.5, 2, 1.5, "")
	mk(2, "scanning", "orchard", 0.8, 4, 2.2, "")
	mk(3, "package_delivery", "urban", 0.5, 4, 2.2, "")
	mk(4, "package_delivery", "urban", 0.9, 8, 2.2, "engine exploded")

	cases := []struct {
		name string
		q    Query
		want []int
	}{
		{"all", Query{}, []int{0, 1, 2, 3, 4}},
		{"workload", Query{Workload: "scanning"}, []int{0, 1, 2}},
		{"scenario", Query{Scenario: "urban"}, []int{3, 4}},
		{"difficulty_range", Query{Difficulty: Between(0.4, 0.6)}, []int{1, 3}},
		{"cores_min", Query{Cores: AtLeast(4)}, []int{2, 3, 4}},
		{"freq_max", Query{FreqGHz: AtMost(1.5)}, []int{0, 1}},
		{"only_ok", Query{OnlyOK: true}, []int{0, 1, 2, 3}},
		{"combined", Query{Workload: "package_delivery", OnlyOK: true}, []int{3}},
		{"none", Query{Workload: "no_such_workload"}, nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := s.Query(tc.q)
			var gotIdx []int
			for _, r := range got {
				gotIdx = append(gotIdx, r.Index)
			}
			if !reflect.DeepEqual(gotIdx, tc.want) {
				t.Fatalf("Query(%+v) = %v, want %v", tc.q, gotIdx, tc.want)
			}
			if n := s.Count(tc.q); n != len(tc.want) {
				t.Fatalf("Count(%+v) = %d, want %d", tc.q, n, len(tc.want))
			}
		})
	}

	limited := s.Query(Query{Limit: 2})
	if len(limited) != 2 {
		t.Fatalf("Limit=2 returned %d results", len(limited))
	}
	// Limit is applied after the hash sort, so it returns a stable prefix.
	again := s.Query(Query{Limit: 2})
	if !reflect.DeepEqual(limited, again) {
		t.Fatal("limited query not stable")
	}
}

func TestMigrateRoundTripsEveryRecord(t *testing.T) {
	srcDir, dstDir := t.TempDir(), t.TempDir()
	src, err := mavbench.NewDiskStore(srcDir)
	if err != nil {
		t.Fatal(err)
	}
	const n = 30
	for i := 0; i < n; i++ {
		src.Put(testHash(i), testResult(i))
	}
	dst := openTestStore(t, dstDir)
	st, err := Migrate(src, dst)
	if err != nil {
		t.Fatalf("Migrate: %v", err)
	}
	if st.Migrated != n || st.Skipped != 0 {
		t.Fatalf("MigrateStats = %+v, want %d migrated", st, n)
	}
	for i := 0; i < n; i++ {
		got, ok := dst.Get(testHash(i))
		want, _ := src.Get(testHash(i))
		if !ok || !sameResult(got, want) {
			t.Fatalf("record %d did not round-trip (ok=%v)", i, ok)
		}
	}
	// Re-running converges without duplicating live records.
	st2, err := Migrate(src, dst)
	if err != nil || st2.Migrated != n {
		t.Fatalf("re-migrate: %+v, %v", st2, err)
	}
	if dst.Len() != n {
		t.Fatalf("re-migrate duplicated records: Len = %d, want %d", dst.Len(), n)
	}
}

func TestOpenSweepsTempFiles(t *testing.T) {
	dir := t.TempDir()
	os.WriteFile(filepath.Join(dir, ".seg-123.tmp"), []byte("half-compacted"), 0o644)
	openTestStore(t, dir)
	if _, err := os.Stat(filepath.Join(dir, ".seg-123.tmp")); !os.IsNotExist(err) {
		t.Fatal("stale compaction temp file survived Open")
	}
}
