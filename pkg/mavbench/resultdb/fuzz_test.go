package resultdb

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"mavbench/pkg/mavbench"
)

// FuzzSegmentOpen throws arbitrary bytes at the store as a pre-existing
// segment file: Open must never fail or panic on segment *content* (only on
// I/O errors), every record it does index must be retrievable, and the store
// must stay fully writable afterwards — corruption is contained, not fatal.
func FuzzSegmentOpen(f *testing.F) {
	good, _ := json.Marshal(record{Hash: testHash(1), Result: testResult(1)})
	f.Add([]byte{})
	f.Add([]byte("\n\n\n"))
	f.Add([]byte("{not json at all"))
	f.Add(append(append([]byte{}, good...), '\n'))
	f.Add(append(append([]byte{}, good...), []byte("\n{\"hash\":\"zz/../..\",\"result\":{}}\n")...))
	f.Add(good[:len(good)/2]) // torn tail
	f.Fuzz(func(t *testing.T, seg []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segName(1)), seg, 0o644); err != nil {
			t.Skip()
		}
		s, err := Open(dir)
		if err != nil {
			t.Fatalf("Open on arbitrary segment content errored: %v", err)
		}
		defer s.Close()
		st := s.Stats()
		if st.Records != s.Len() {
			t.Fatalf("Stats.Records %d != Len %d", st.Records, s.Len())
		}
		// Everything indexed must read back.
		for _, res := range s.Query(Query{}) {
			_ = res
		}
		if got := len(s.Query(Query{})); got != st.Records {
			t.Fatalf("Query returned %d of %d indexed records", got, st.Records)
		}
		// The store stays writable and the write survives reopening.
		s.Put(testHash(7), testResult(7))
		if _, ok := s.Get(testHash(7)); !ok {
			t.Fatal("Put after corrupt Open did not stick")
		}
		s.Close()
		s2, err := Open(dir)
		if err != nil {
			t.Fatalf("reopen after heal: %v", err)
		}
		defer s2.Close()
		if _, ok := s2.Get(testHash(7)); !ok {
			t.Fatal("healed write lost on reopen")
		}
	})
}

// FuzzStoreOps replays an arbitrary operation sequence (put/overwrite/get/
// compact/reopen) against a model map and checks the store agrees after
// every step. ops bytes: low 2 bits select the op, high bits the key.
func FuzzStoreOps(f *testing.F) {
	f.Add([]byte{0, 4, 8, 1, 2, 3})
	f.Add([]byte{0, 0, 0, 0, 3, 0})
	f.Add([]byte{0, 1, 2, 3, 0, 1, 2, 3, 3, 2})
	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) > 64 {
			t.Skip()
		}
		dir := t.TempDir()
		s, err := Open(dir, WithSegmentTargetBytes(2048), WithAutoCompact(false))
		if err != nil {
			t.Fatal(err)
		}
		defer func() { s.Close() }()
		model := map[string]float64{} // hash -> expected MissionTimeS
		version := 0.0
		for _, op := range ops {
			key := testHash(int(op >> 2))
			switch op % 4 {
			case 0, 1: // put / overwrite
				version++
				res := testResult(int(op >> 2))
				res.Report.MissionTimeS = version
				s.Put(key, res)
				model[key] = version
			case 2: // compact
				if err := s.Compact(); err != nil {
					t.Fatalf("Compact: %v", err)
				}
				if s.Stats().DeadBytes != 0 {
					t.Fatal("dead bytes after Compact")
				}
			case 3: // reopen
				s.Close()
				s, err = Open(dir, WithSegmentTargetBytes(2048), WithAutoCompact(false))
				if err != nil {
					t.Fatalf("reopen: %v", err)
				}
			}
			if s.Len() != len(model) {
				t.Fatalf("Len %d != model %d after op %d", s.Len(), len(model), op)
			}
			for h, want := range model {
				got, ok := s.Get(h)
				if !ok || got.Report.MissionTimeS != want {
					t.Fatalf("Get(%s): ok=%v MissionTimeS=%v, model %v", h, ok, got.Report.MissionTimeS, want)
				}
			}
		}
	})
}

// FuzzQuery checks that arbitrary range filters never panic and always agree
// with a direct scan of the stored results.
func FuzzQuery(f *testing.F) {
	f.Add(0.0, 1.0, true, true, uint8(3))
	f.Add(-5.0, 5.0, false, true, uint8(0))
	f.Fuzz(func(t *testing.T, lo, hi float64, hasMin, hasMax bool, limit uint8) {
		s, err := Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		var all []mavbench.Result
		for i := 0; i < 12; i++ {
			res := testResult(i)
			res.Spec.Difficulty = float64(i) / 10
			s.Put(testHash(i), res)
			all = append(all, res)
		}
		q := Query{
			Difficulty: Range{Min: lo, Max: hi, HasMin: hasMin, HasMax: hasMax},
			Limit:      int(limit),
		}
		got := s.Query(q)
		want := 0
		for _, res := range all {
			if (!hasMin || res.Spec.Difficulty >= lo) && (!hasMax || res.Spec.Difficulty <= hi) {
				want++
			}
		}
		if q.Limit > 0 && want > q.Limit {
			want = q.Limit
		}
		if len(got) != want {
			t.Fatalf("Query returned %d results, direct scan says %d (q=%+v)", len(got), want, q)
		}
	})
}
