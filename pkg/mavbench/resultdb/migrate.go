package resultdb

import (
	"fmt"

	"mavbench/pkg/mavbench"
)

// MigrateStats summarizes a migration run.
type MigrateStats struct {
	// Migrated counts records copied into the destination.
	Migrated int `json:"migrated"`
	// Skipped counts source entries that could not be read back (corrupt or
	// concurrently evicted) — they are left behind, not fatal.
	Skipped int `json:"skipped"`
}

// Migrate copies every record of a one-file-per-hash DiskStore into a
// segment store, oldest recency first so the destination's append order
// preserves the source's recency ranking. The source is not modified; a
// record already present in the destination is overwritten (last-write-wins)
// so re-running a partially completed migration converges. Returns an error
// only if the destination rejects writes outright (store closed).
func Migrate(src *mavbench.DiskStore, dst *Store) (MigrateStats, error) {
	var st MigrateStats
	if src == nil || dst == nil {
		return st, fmt.Errorf("resultdb: migrate requires both a source and a destination store")
	}
	for _, hash := range src.Hashes() {
		res, ok := src.Get(hash)
		if !ok {
			st.Skipped++
			continue
		}
		dst.Put(hash, res)
		if _, ok := dst.Get(hash); !ok {
			return st, fmt.Errorf("resultdb: migrated record %s did not round-trip; destination store unwritable?", hash)
		}
		st.Migrated++
	}
	return st, nil
}
