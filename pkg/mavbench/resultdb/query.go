package resultdb

import (
	"sort"

	"mavbench/pkg/mavbench"
)

// Range is an optional closed interval filter. The zero value matches
// everything; set HasMin/HasMax to activate each bound.
type Range struct {
	Min    float64 `json:"min,omitempty"`
	Max    float64 `json:"max,omitempty"`
	HasMin bool    `json:"has_min,omitempty"`
	HasMax bool    `json:"has_max,omitempty"`
}

// AtLeast returns a Range with only a lower bound.
func AtLeast(v float64) Range { return Range{Min: v, HasMin: true} }

// AtMost returns a Range with only an upper bound.
func AtMost(v float64) Range { return Range{Max: v, HasMax: true} }

// Between returns a closed interval Range.
func Between(lo, hi float64) Range {
	return Range{Min: lo, Max: hi, HasMin: true, HasMax: true}
}

// contains reports whether v satisfies the active bounds.
func (r Range) contains(v float64) bool {
	if r.HasMin && v < r.Min {
		return false
	}
	if r.HasMax && v > r.Max {
		return false
	}
	return true
}

// Query selects stored results by the spec axes the paper's analyses slice
// on. Zero-valued fields match everything.
type Query struct {
	// Workload filters on the exact canonical workload name.
	Workload string `json:"workload,omitempty"`
	// Scenario filters on the exact scenario name.
	Scenario string `json:"scenario,omitempty"`
	// Difficulty, Cores and FreqGHz filter on the compute/difficulty axes.
	Difficulty Range `json:"difficulty,omitempty"`
	Cores      Range `json:"cores,omitempty"`
	FreqGHz    Range `json:"freq_ghz,omitempty"`
	// OnlyOK drops failed runs.
	OnlyOK bool `json:"only_ok,omitempty"`
	// Limit caps the number of returned results (0 = no cap). The cap is
	// applied after sorting, so a limited query returns a stable prefix.
	Limit int `json:"limit,omitempty"`
}

// matches applies the metadata filters (everything except record retrieval).
func (q Query) matches(m recMeta) bool {
	if q.Workload != "" && m.workload != q.Workload {
		return false
	}
	if q.Scenario != "" && m.scenario != q.Scenario {
		return false
	}
	if !q.Difficulty.contains(m.difficulty) {
		return false
	}
	if !q.Cores.contains(float64(m.cores)) {
		return false
	}
	if !q.FreqGHz.contains(m.freqGHz) {
		return false
	}
	if q.OnlyOK && !m.ok {
		return false
	}
	return true
}

// Query returns the stored results matching q, sorted by spec hash for
// stable output. Filtering runs on the in-memory index; only matching
// records are read from disk. Records that fail to read back are skipped —
// the store's usual corruption tolerance.
func (s *Store) Query(q Query) []mavbench.Result {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	var hashes []string
	for h, loc := range s.index {
		if q.matches(loc.meta) {
			hashes = append(hashes, h)
		}
	}
	sort.Strings(hashes)
	if q.Limit > 0 && len(hashes) > q.Limit {
		hashes = hashes[:q.Limit]
	}
	out := make([]mavbench.Result, 0, len(hashes))
	for _, h := range hashes {
		rec, err := s.readLocked(s.index[h])
		if err != nil {
			continue
		}
		out = append(out, rec.Result)
	}
	return out
}

// Count returns the number of live records matching q without reading any
// record bodies.
func (s *Store) Count(q Query) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, loc := range s.index {
		if q.matches(loc.meta) {
			n++
		}
	}
	return n
}
