package mavbench

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestNewSpecValidatesAtBuildTime(t *testing.T) {
	if _, err := NewSpec("scanning",
		WithOperatingPoint(4, 2.2),
		WithPlanner("rrt_connect"),
		WithCloudOffload(LAN1Gbps()),
		WithWorldScale(0.4),
	); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}

	cases := []struct {
		name string
		wl   string
		opts []Option
		want string
	}{
		{"unknown workload", "surveillance", nil, "unknown workload"},
		{"empty workload", "", nil, "no workload"},
		{"unknown detector", "search_and_rescue", []Option{WithDetector("yolov9")}, "unknown detector"},
		{"unknown localizer", "scanning", []Option{WithLocalizer("lidar")}, "unknown localizer"},
		{"unknown planner", "scanning", []Option{WithPlanner("dijkstra")}, "unknown planner"},
		{"unknown environment", "scanning", []Option{WithEnvironment("ocean")}, "unknown environment"},
		{"cores out of range", "scanning", []Option{WithOperatingPoint(64, 2.2)}, "cores"},
		{"negative frequency", "scanning", []Option{WithOperatingPoint(4, -1)}, "freq_ghz"},
		{"huge resolution", "scanning", []Option{WithOctomapResolution(7)}, "octomap_resolution"},
		{"inverted dynamic policy", "scanning", []Option{WithDynamicResolution(0.8, 0.15)}, "coarse"},
		{"negative noise", "scanning", []Option{WithDepthNoise(-0.5)}, "depth_noise_std"},
		{"absurd world scale", "scanning", []Option{WithWorldScale(99)}, "world_scale"},
		{"negative mission time", "scanning", []Option{WithMaxMissionTime(-5)}, "max_mission_time_s"},
		{"broken cloud link", "scanning", []Option{WithCloudOffload(CloudLink{BandwidthMbps: -1})}, "bandwidth"},
	}
	for _, tc := range cases {
		_, err := NewSpec(tc.wl, tc.opts...)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: NewSpec error = %v, want mention of %q", tc.name, err, tc.want)
		}
	}
}

func TestCanonicalFillsDefaults(t *testing.T) {
	spec, err := NewSpec("scanning")
	if err != nil {
		t.Fatal(err)
	}
	c := spec.Canonical()
	if c.Cores != 4 || c.FreqGHz != 2.2 {
		t.Errorf("default operating point = %d @ %g", c.Cores, c.FreqGHz)
	}
	if c.Detector != "yolo" || c.Localizer != "gps" || c.Planner != "rrt_connect" {
		t.Errorf("default kernels = %q %q %q", c.Detector, c.Localizer, c.Planner)
	}
	if c.CloudLink == nil || c.CloudLink.BandwidthMbps <= 0 {
		t.Error("default cloud link not filled")
	}
}

// TestHashGolden pins the content address of a fully specified spec. The
// constant was computed once and must never change spontaneously: it guards
// that Spec.Hash is deterministic across processes, platforms and rebuilds.
// If you deliberately extend Spec (a new cache generation), update the
// constant and say so in the commit message.
func TestHashGolden(t *testing.T) {
	spec, err := NewSpec("package_delivery",
		WithOperatingPoint(2, 0.8),
		WithSeed(7),
		WithLocalizer("ground_truth"),
		WithWorldScale(0.4),
		WithMaxMissionTime(900),
	)
	if err != nil {
		t.Fatal(err)
	}
	// Updated when the scenario fields (scenario, difficulty, scenario_knobs)
	// joined the canonical form — a deliberate new cache generation.
	const golden = "58a19678fc581a6b3242697ca1ddba75300c721f8d9e915e8d3fb0173f2b3eab"
	if got := spec.Hash(); got != golden {
		t.Errorf("Hash() = %s, want %s (did Spec's canonical form change?)", got, golden)
	}
}

func TestHashCanonicalization(t *testing.T) {
	// Alias spellings and explicit defaults hash identically to the
	// canonical short form.
	short, err := NewSpec("mapping_3d", WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	explicit, err := NewSpec("mapping_3d",
		WithSeed(3),
		WithOperatingPoint(4, 2.2),
		WithDetector("yolo"),
		WithLocalizer("gps"),
		WithPlanner("rrtconnect"), // alias of rrt_connect
		WithOctomapResolution(0.15),
		WithWorldScale(1.0),
	)
	if err != nil {
		t.Fatal(err)
	}
	if short.Hash() != explicit.Hash() {
		t.Errorf("equivalent specs hash differently:\n%s\n%s", short.Hash(), explicit.Hash())
	}
	// Any knob change must change the hash.
	other, err := NewSpec("mapping_3d", WithSeed(4))
	if err != nil {
		t.Fatal(err)
	}
	if short.Hash() == other.Hash() {
		t.Error("different seeds produced the same hash")
	}
}

func TestSpecJSONRoundTrip(t *testing.T) {
	spec, err := NewSpec("scanning",
		WithOperatingPoint(3, 1.5),
		WithSeed(11),
		WithCloudOffload(LTE()),
		WithDepthNoise(0.5),
		WithTraces(),
	)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	var back Spec
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Hash() != spec.Hash() {
		t.Errorf("hash changed across JSON round trip:\n%s\n%s", spec.Hash(), back.Hash())
	}
	if err := back.Validate(); err != nil {
		t.Errorf("round-tripped spec invalid: %v", err)
	}
}

func TestSweepAndRepeatSpecs(t *testing.T) {
	base, err := NewSpec("scanning", WithSeed(101), WithWorldScale(0.3))
	if err != nil {
		t.Fatal(err)
	}
	points := PaperOperatingPoints()
	if len(points) != 9 {
		t.Fatalf("paper grid has %d points", len(points))
	}
	specs := SweepSpecs(base, points)
	if len(specs) != 9 {
		t.Fatalf("sweep produced %d specs", len(specs))
	}
	seen := map[string]bool{}
	for i, s := range specs {
		if s.Cores != points[i].Cores || s.FreqGHz != points[i].FreqGHz {
			t.Errorf("spec %d operating point = %d @ %g", i, s.Cores, s.FreqGHz)
		}
		if s.Seed != DeriveSeed(101, "scanning", points[i].Cores, points[i].FreqGHz, 0) {
			t.Errorf("spec %d seed not derived from point identity", i)
		}
		if seen[s.Hash()] {
			t.Errorf("spec %d duplicates another sweep cell's hash", i)
		}
		seen[s.Hash()] = true
	}
	repeats := RepeatSpecs(base, 3)
	if len(repeats) != 3 {
		t.Fatalf("repeats = %d", len(repeats))
	}
	if repeats[0].Seed == repeats[1].Seed {
		t.Error("repeat seeds should differ")
	}
}

func TestWorkloadListing(t *testing.T) {
	infos := Workloads()
	if len(infos) < 5 {
		t.Fatalf("expected the five paper workloads, got %d", len(infos))
	}
	found := map[string]bool{}
	for _, info := range infos {
		if info.Description == "" {
			t.Errorf("workload %s has no description", info.Name)
		}
		found[info.Name] = true
	}
	for _, want := range []string{"scanning", "package_delivery", "mapping_3d", "search_and_rescue", "aerial_photography"} {
		if !found[want] {
			t.Errorf("workload %s missing from listing", want)
		}
	}
	for _, list := range [][]string{Detectors(), Localizers(), Planners(), Environments()} {
		if len(list) == 0 {
			t.Error("empty kernel/environment name list")
		}
	}
}
