package mavbench

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"
	"time"
)

// sameJSON reports whether two values marshal identically — the equality that
// matters for wire-visible results (Report holds maps, so == won't do).
func sameJSON(t *testing.T, a, b any) bool {
	t.Helper()
	ja, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	jb, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	return string(ja) == string(jb)
}

func storeResult(seed int) Result {
	return Result{
		SpecHash: storeHash(seed),
		Spec:     Spec{Workload: "scanning", Seed: int64(seed)},
		Platform: "TX2",
		Report:   Report{Success: true, MissionTimeS: float64(seed)},
	}
}

// storeHash fabricates a distinct, valid (lowercase hex) content address.
func storeHash(seed int) string { return fmt.Sprintf("%064x", 0xabc0+seed) }

func TestDiskStoreRoundTrip(t *testing.T) {
	s, err := NewDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	want := storeResult(1)
	s.Put(want.SpecHash, want)
	got, ok := s.Get(want.SpecHash)
	if !ok {
		t.Fatal("stored result not found")
	}
	if !sameJSON(t, got, want) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
	if _, ok := s.Get(storeHash(2)); ok {
		t.Error("unknown hash reported as hit")
	}

	// A second store over the same directory must see the entry (the fleet
	// sharing path: a different process opens the same dir).
	s2, err := NewDiskStore(s.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := s2.Get(want.SpecHash); !ok || !sameJSON(t, got, want) {
		t.Fatalf("fresh store over same dir: got %+v ok=%v", got, ok)
	}
}

// TestDiskStoreRejectsUnsafeHashes guards the path-traversal boundary: only
// lowercase-hex hashes name files.
func TestDiskStoreRejectsUnsafeHashes(t *testing.T) {
	dir := t.TempDir()
	s, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, hash := range []string{"", "../escape", "ABCDEF", "abc/def", "zz"} {
		s.Put(hash, storeResult(1))
		if _, ok := s.Get(hash); ok {
			t.Errorf("unsafe hash %q was stored", hash)
		}
	}
	dirents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(dirents) != 0 {
		t.Fatalf("unsafe hashes left files behind: %v", dirents)
	}
}

// TestDiskStoreCorruptFileTolerance pins the failure semantics: a truncated
// or garbage entry is a miss (never a crash), is cleared out, and the hash is
// writable again afterwards.
func TestDiskStoreCorruptFileTolerance(t *testing.T) {
	dir := t.TempDir()
	hash := storeHash(1)
	if err := os.WriteFile(filepath.Join(dir, hash+".json"), []byte(`{"spec_hash": "tru`), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(hash); ok {
		t.Fatal("corrupt entry served as a hit")
	}
	if _, err := os.Stat(filepath.Join(dir, hash+".json")); !os.IsNotExist(err) {
		t.Errorf("corrupt entry not removed (stat err = %v)", err)
	}
	want := storeResult(1)
	s.Put(hash, want)
	if got, ok := s.Get(hash); !ok || !sameJSON(t, got, want) {
		t.Fatalf("hash unusable after corrupt-entry recovery: %+v ok=%v", got, ok)
	}
}

// TestDiskStoreConcurrentAccess races readers, writers and rereaders over a
// small hash space (run with -race).
func TestDiskStoreConcurrentAccess(t *testing.T) {
	s, err := NewDiskStore(t.TempDir(), WithMaxBytes(4096))
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 8
	const iters = 50
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				seed := (g + i) % 5
				s.Put(storeHash(seed), storeResult(seed))
				if res, ok := s.Get(storeHash(seed)); ok {
					if res.SpecHash != storeHash(seed) {
						t.Errorf("hash %d returned result for %s", seed, res.SpecHash)
					}
				}
				s.Len()
				s.SizeBytes()
			}
		}(g)
	}
	wg.Wait()
}

// TestDiskStoreLRUEviction pins the size bound: oldest-used entries fall out,
// the most recently used survive, and the directory shrinks accordingly.
func TestDiskStoreLRUEviction(t *testing.T) {
	entrySize := func() int64 {
		dir := t.TempDir()
		probe, err := NewDiskStore(dir)
		if err != nil {
			t.Fatal(err)
		}
		probe.Put(storeHash(0), storeResult(0))
		return probe.SizeBytes()
	}()
	if entrySize <= 0 {
		t.Fatalf("probe entry size = %d", entrySize)
	}

	// Room for ~3 entries.
	s, err := NewDiskStore(t.TempDir(), WithMaxBytes(entrySize*3+entrySize/2))
	if err != nil {
		t.Fatal(err)
	}
	for seed := 1; seed <= 6; seed++ {
		s.Put(storeHash(seed), storeResult(seed))
		// Distinct mtimes: recency across processes rides on file times.
		time.Sleep(5 * time.Millisecond)
	}
	if n := s.Len(); n > 3 {
		t.Errorf("store holds %d entries, bound allows 3", n)
	}
	if size := s.SizeBytes(); size > entrySize*3+entrySize/2 {
		t.Errorf("store size %d exceeds bound", size)
	}
	if _, ok := s.Get(storeHash(1)); ok {
		t.Error("oldest entry survived eviction")
	}
	if _, ok := s.Get(storeHash(6)); !ok {
		t.Error("newest entry was evicted")
	}

	// Recency, not insertion order: touch an old survivor, add pressure, and
	// the touched entry must outlive the untouched one.
	if _, ok := s.Get(storeHash(4)); !ok {
		t.Fatal("expected entry 4 resident")
	}
	time.Sleep(5 * time.Millisecond)
	s.Put(storeHash(7), storeResult(7))
	time.Sleep(5 * time.Millisecond)
	s.Put(storeHash(8), storeResult(8))
	if _, ok := s.Get(storeHash(4)); !ok {
		t.Error("recently used entry evicted before stale ones")
	}
	if _, ok := s.Get(storeHash(5)); ok {
		t.Error("stale entry outlived a recently used one")
	}
}

// TestDiskStoreEvictionOrderDeterministic pins recency recovery against
// coarse filesystem timestamps. When several entries carry the *same* mtime
// (a 1s- or 2s-granularity filesystem stamping files written close together),
// the recovered order — and therefore which entries an LRU bound evicts —
// must not depend on directory enumeration: equal mtimes tie-break by hash.
// And a live touch must always move a file strictly past the last mtime this
// process applied, so ties stop accumulating in the first place.
func TestDiskStoreEvictionOrderDeterministic(t *testing.T) {
	dir := t.TempDir()
	s, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	var entrySize int64
	var hashes []string
	for seed := 1; seed <= 5; seed++ {
		h := storeHash(seed)
		hashes = append(hashes, h)
		s.Put(h, storeResult(seed))
	}
	entrySize = s.SizeBytes() / 5

	// Simulate the coarse filesystem: every entry lands on one timestamp.
	stamp := time.Now().Add(-time.Hour)
	for _, h := range hashes {
		if err := os.Chtimes(filepath.Join(dir, h+".json"), stamp, stamp); err != nil {
			t.Fatal(err)
		}
	}
	want := append([]string(nil), hashes...)
	sort.Strings(want)

	// Recovery is deterministic: every fresh scan of the tied directory
	// yields the same oldest-first order, the hash order.
	for trial := 0; trial < 3; trial++ {
		s2, err := NewDiskStore(dir)
		if err != nil {
			t.Fatal(err)
		}
		got := s2.Hashes()
		if len(got) != len(want) {
			t.Fatalf("trial %d: recovered %d hashes, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: recovered order %v, want hash-tie-broken %v", trial, got, want)
			}
		}
	}

	// Eviction off the recovered order is equally deterministic: under
	// pressure the hash-smallest of the tied entries go first.
	s3, err := NewDiskStore(dir, WithMaxBytes(entrySize*3+entrySize/2))
	if err != nil {
		t.Fatal(err)
	}
	s3.Put(storeHash(6), storeResult(6))
	for _, h := range want[:3] {
		if _, ok := s3.Get(h); ok {
			t.Errorf("tie-broken-oldest entry %s survived eviction", h)
		}
	}
	for _, h := range append(want[3:5:5], storeHash(6)) {
		if _, ok := s3.Get(h); !ok {
			t.Errorf("tie-broken-newest entry %s was evicted", h)
		}
	}

	// The monotonic clamp: even when the clock has not advanced past the
	// last applied mtime, a touch still moves the file strictly forward.
	future := time.Now().Add(time.Hour)
	s3.mu.Lock()
	s3.lastTouch = future
	s3.mu.Unlock()
	if _, ok := s3.Get(storeHash(6)); !ok {
		t.Fatal("entry 6 vanished")
	}
	info, err := os.Stat(filepath.Join(dir, storeHash(6)+".json"))
	if err != nil {
		t.Fatal(err)
	}
	if !info.ModTime().After(future) {
		t.Errorf("touch applied mtime %v, want strictly after the %v high-water mark", info.ModTime(), future)
	}
}
