package mavbench

import (
	"sync"

	"mavbench/internal/env"
)

// WorldCache caches built worlds keyed by Spec.WorldHash, so a compute-axis
// sweep — many operating points over the same (scenario, difficulty, seed) —
// constructs each world once and serves every subsequent run a deep clone.
// Results are bit-identical with or without the cache: a clone reproduces
// obstacle, patrol and RNG state exactly (pinned by tests).
//
// The cache is a size-bounded in-process LRU with an optional
// content-addressed disk spill tier (<world-hash>.json snapshots, atomic
// writes — the DiskStore pattern), which lets worlds survive restarts and be
// shared across the processes of a fleet worker box. Construct with
// NewWorldCache, or use the process-wide DefaultWorldCache that campaigns
// pick up automatically. Safe for concurrent use.
type WorldCache struct {
	c *env.WorldCache
}

// WorldCacheStats is a point-in-time snapshot of cache effectiveness.
type WorldCacheStats struct {
	// Hits counts lookups served without building (memory or disk spill).
	Hits int64 `json:"hits"`
	// Misses counts lookups that built the world.
	Misses int64 `json:"misses"`
	// Evictions counts entries dropped by the LRU size bound.
	Evictions int64 `json:"evictions"`
	// SpillHits is the subset of Hits served from the disk spill tier.
	SpillHits int64 `json:"spill_hits"`
	// SpillWrites counts world snapshots written to the spill directory.
	SpillWrites int64 `json:"spill_writes"`
	// Entries is the number of worlds resident in memory.
	Entries int `json:"entries"`
	// SizeBytes is the estimated in-memory footprint.
	SizeBytes int64 `json:"size_bytes"`
}

// WorldCacheOption configures a WorldCache under construction.
type WorldCacheOption func(*worldCacheConfig)

type worldCacheConfig struct {
	maxBytes int64
	dir      string
}

// WithWorldCacheMaxBytes bounds the cache's estimated in-memory footprint
// (least-recently-used worlds evict past it; the most recent entry is always
// kept). n <= 0 means unbounded.
func WithWorldCacheMaxBytes(n int64) WorldCacheOption {
	return func(c *worldCacheConfig) { c.maxBytes = n }
}

// WithWorldCacheDir enables the content-addressed disk spill tier at dir.
func WithWorldCacheDir(dir string) WorldCacheOption {
	return func(c *worldCacheConfig) { c.dir = dir }
}

// DefaultWorldCacheBytes is the in-memory bound of the process-wide default
// cache. Worlds are hundreds of bytes to a few hundred KiB each, so the
// default holds thousands of distinct worlds.
const DefaultWorldCacheBytes int64 = 256 << 20

// NewWorldCache constructs a world cache. With no options the cache is
// memory-only, bounded at DefaultWorldCacheBytes.
func NewWorldCache(opts ...WorldCacheOption) *WorldCache {
	cfg := worldCacheConfig{maxBytes: DefaultWorldCacheBytes}
	for _, opt := range opts {
		opt(&cfg)
	}
	envOpts := []env.WorldCacheOption{env.WithCacheMaxBytes(cfg.maxBytes)}
	if cfg.dir != "" {
		envOpts = append(envOpts, env.WithCacheDir(cfg.dir))
	}
	return &WorldCache{c: env.NewWorldCache(envOpts...)}
}

// Stats returns a snapshot of the cache counters.
func (wc *WorldCache) Stats() WorldCacheStats {
	st := wc.c.Stats()
	return WorldCacheStats{
		Hits: st.Hits, Misses: st.Misses, Evictions: st.Evictions,
		SpillHits: st.SpillHits, SpillWrites: st.SpillWrites,
		Entries: st.Entries, SizeBytes: st.SizeBytes,
	}
}

// engine returns the internal cache (nil-safe).
func (wc *WorldCache) engine() *env.WorldCache {
	if wc == nil {
		return nil
	}
	return wc.c
}

var (
	defaultWorldCacheOnce sync.Once
	defaultWorldCache     *WorldCache
)

// DefaultWorldCache returns the process-wide world cache every Campaign (and
// therefore every mavbenchd campaign and fleet worker batch) uses unless
// overridden with Campaign.SetWorldCache. Sharing one cache across campaigns
// is what lets fleet workers reuse worlds across batches.
func DefaultWorldCache() *WorldCache {
	defaultWorldCacheOnce.Do(func() {
		defaultWorldCache = NewWorldCache()
	})
	return defaultWorldCache
}
