package mavbench

// ResultStore is a content-addressed store of campaign results, keyed by
// Spec.Hash(). Because the hash covers every knob of the canonical spec
// (including the seed) and runs are deterministic, a stored result is
// bit-identical to re-simulating — campaigns therefore serve repeated specs
// from the store without running them. Implementations must be safe for
// concurrent use; campaigns call them from every worker, and the mavbenchd
// fleet calls one store from many processes.
//
// Two implementations ship with the package: MemoryCache (in-process,
// optionally bounded) and DiskStore (persistent, one file per spec hash,
// shareable between the processes of a worker fleet).
type ResultStore interface {
	// Get returns the stored result for a spec hash.
	Get(hash string) (Result, bool)
	// Put stores a successful result under its spec hash.
	Put(hash string, res Result)
}

// ResultCache is the former name of ResultStore, kept as an alias so code
// written against earlier releases keeps compiling.
//
// Deprecated: use ResultStore.
type ResultCache = ResultStore
