package mavbench

import (
	"context"
	"errors"
	"fmt"

	"mavbench/internal/core"
)

// Result is the outcome of one campaign run: the canonical spec that ran,
// its content address, and either a quality-of-flight report or an error.
type Result struct {
	// Index is the spec's position in the campaign (results stream in
	// completion order; Index recovers submission order).
	Index int `json:"index"`
	// SpecHash is the canonical spec's content address (Spec.Hash).
	SpecHash string `json:"spec_hash"`
	// Spec is the canonical (defaults-filled) form of the spec that ran.
	Spec Spec `json:"spec"`
	// Platform names the simulated companion computer.
	Platform string `json:"platform,omitempty"`
	// Report is the quality-of-flight summary (zero when Error is set). For
	// multi-vehicle runs it is the fleet aggregate across VehicleReports.
	Report Report `json:"report"`
	// VehicleReports holds the per-drone reports of a multi-vehicle run in
	// vehicle-index order (nil for classic single-drone runs); Report is then
	// their aggregate. See docs/MULTIVEHICLE.md for the merge semantics.
	VehicleReports []Report `json:"vehicle_reports,omitempty"`
	// Error is set when the run failed, panicked, or was rejected by
	// validation; it serializes so failed runs stay visible on the wire.
	Error string `json:"error,omitempty"`
	// Cached marks results served from a content-addressed cache instead of
	// a fresh simulation.
	Cached bool `json:"cached,omitempty"`

	err error
}

// Err returns the run's error, nil on success. It survives JSON round-trips
// via the Error string.
func (r Result) Err() error {
	switch {
	case r.err != nil:
		return r.err
	case r.Error != "":
		return errors.New(r.Error)
	}
	return nil
}

// OK reports whether the run produced a report.
func (r Result) OK() bool { return r.Err() == nil }

// Campaign is a batch of specs executed together on the parallel runner.
// Configure it with the chainable setters, then consume results with Stream
// (incremental) or Collect (blocking, spec order).
type Campaign struct {
	specs   []Spec
	workers int
	cache   ResultStore

	worldCache    *WorldCache
	worldCacheSet bool
}

// NewCampaign builds a campaign over the given specs. Specs are not
// re-validated here; invalid specs (possible when a Spec was assembled by
// hand rather than through NewSpec) surface as failed Results.
func NewCampaign(specs ...Spec) *Campaign {
	return &Campaign{specs: append([]Spec(nil), specs...)}
}

// SetWorkers bounds the number of concurrently executing runs
// (<= 0 selects one worker per CPU). Returns the campaign for chaining.
func (c *Campaign) SetWorkers(n int) *Campaign {
	c.workers = n
	return c
}

// SetStore installs a content-addressed result store: specs whose hash is
// already stored are served without re-simulating, and fresh successful
// results are stored. Returns the campaign for chaining.
func (c *Campaign) SetStore(store ResultStore) *Campaign {
	c.cache = store
	return c
}

// SetCache is the former name of SetStore, kept for compatibility.
//
// Deprecated: use SetStore.
func (c *Campaign) SetCache(cache ResultStore) *Campaign { return c.SetStore(cache) }

// SetWorldCache overrides the campaign's world cache: worlds are built once
// per world-hash and every run receives a deep clone (results stay
// bit-identical; see WorldCache). Campaigns that never call this share the
// process-wide DefaultWorldCache; passing nil disables world caching for
// this campaign entirely. Returns the campaign for chaining.
func (c *Campaign) SetWorldCache(wc *WorldCache) *Campaign {
	c.worldCache = wc
	c.worldCacheSet = true
	return c
}

// effectiveWorldCache resolves the campaign's world cache (nil = disabled).
func (c *Campaign) effectiveWorldCache() *WorldCache {
	if c.worldCacheSet {
		return c.worldCache
	}
	return DefaultWorldCache()
}

// Len returns the number of specs in the campaign.
func (c *Campaign) Len() int { return len(c.specs) }

// Specs returns a copy of the campaign's specs in submission order.
func (c *Campaign) Specs() []Spec { return append([]Spec(nil), c.specs...) }

// Stream executes the campaign and returns a channel that delivers each
// Result the moment its run completes, in completion order. The channel is
// closed once every run has finished or the context is canceled; runs that
// never started due to cancellation simply never appear on the channel (use
// Collect to have them surfaced as failed Results). Seeds are fixed per
// spec before execution, so the set of delivered results is identical at
// any worker count — only the arrival order varies.
//
// The channel is buffered to the campaign size, so a consumer that stops
// receiving early leaks nothing: remaining runs finish, park their results
// in the buffer and the goroutines exit.
func (c *Campaign) Stream(ctx context.Context) <-chan Result {
	if ctx == nil {
		ctx = context.Background()
	}
	out := make(chan Result, len(c.specs))
	specs := c.Specs()
	runner := core.Runner{Workers: c.workers}
	go func() {
		defer close(out)
		// Parallel recovers per-task panics; runOne additionally recovers
		// engine panics itself so the Result is still delivered.
		_ = runner.Parallel(ctx, len(specs), func(i int) error {
			// The buffer holds one slot per spec, so this send never blocks
			// — and never races a concurrent cancellation into dropping a
			// result that was actually computed.
			out <- c.runOne(i, specs[i])
			return nil
		})
	}()
	return out
}

// runOne executes (or serves from cache) a single spec.
func (c *Campaign) runOne(index int, spec Spec) (res Result) {
	canonical := spec.Canonical()
	hash := spec.Hash()
	res = Result{Index: index, SpecHash: hash, Spec: canonical}
	defer func() {
		if rec := recover(); rec != nil {
			res.err = fmt.Errorf("mavbench: run panicked: %v", rec)
			res.Error = res.err.Error()
			res.Report = Report{}
		}
	}()
	if err := spec.Validate(); err != nil {
		res.err = err
		res.Error = err.Error()
		return res
	}
	if c.cache != nil {
		if hit, ok := c.cache.Get(hash); ok {
			hit.Index = index
			hit.Cached = true
			return hit
		}
	}
	runRes, err := core.RunWithCache(spec.params(), c.effectiveWorldCache().engine())
	if err != nil {
		res.err = err
		res.Error = err.Error()
		return res
	}
	res.Platform = runRes.PlatformName
	res.Report = runRes.Report
	res.VehicleReports = runRes.VehicleReports
	if c.cache != nil {
		c.cache.Put(hash, res)
	}
	return res
}

// Collect executes the campaign and blocks until every run has completed,
// returning one Result per spec in submission order. Per-run failures are
// joined into the returned error; successful results are always returned
// alongside it. Cancellation marks the unexecuted runs' Results failed.
func (c *Campaign) Collect(ctx context.Context) ([]Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	results := make([]Result, len(c.specs))
	seen := make([]bool, len(c.specs))
	for res := range c.Stream(ctx) {
		if res.Index >= 0 && res.Index < len(results) {
			results[res.Index] = res
			seen[res.Index] = true
		}
	}
	var errs []error
	for i := range results {
		if !seen[i] {
			err := fmt.Errorf("mavbench: spec %d canceled before execution: %w", i, context.Cause(ctx))
			results[i] = Result{
				Index:    i,
				SpecHash: c.specs[i].Hash(),
				Spec:     c.specs[i].Canonical(),
				Error:    err.Error(),
				err:      err,
			}
		}
		if err := results[i].Err(); err != nil {
			errs = append(errs, fmt.Errorf("spec %d (%s): %w", i, results[i].Spec.Workload, err))
		}
	}
	return results, errors.Join(errs...)
}

// Run executes a single spec and returns its result. It is the one-shot
// convenience over a one-spec Campaign.
func Run(ctx context.Context, spec Spec) (Result, error) {
	results, _ := NewCampaign(spec).Collect(ctx)
	res := results[0]
	return res, res.Err()
}
