package mavbench

import "sync"

// MemoryCache is an in-process ResultStore, optionally bounded. The zero
// value is not usable; construct it with NewMemoryCache or
// NewBoundedMemoryCache.
type MemoryCache struct {
	mu    sync.RWMutex
	m     map[string]Result
	order []string // insertion order, used for eviction when bounded
	max   int      // 0 = unbounded
}

// NewMemoryCache returns an empty, unbounded in-memory result cache.
func NewMemoryCache() *MemoryCache {
	return &MemoryCache{m: map[string]Result{}}
}

// NewBoundedMemoryCache returns an in-memory result cache that evicts its
// oldest entries once it holds maxEntries results (FIFO). Long-running
// services use this so the cache cannot grow without bound.
func NewBoundedMemoryCache(maxEntries int) *MemoryCache {
	if maxEntries < 1 {
		maxEntries = 1
	}
	return &MemoryCache{m: map[string]Result{}, max: maxEntries}
}

// Get implements ResultCache.
func (c *MemoryCache) Get(hash string) (Result, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	res, ok := c.m[hash]
	return res, ok
}

// Put implements ResultCache.
func (c *MemoryCache) Put(hash string, res Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, exists := c.m[hash]; !exists {
		c.order = append(c.order, hash)
	}
	c.m[hash] = res
	for c.max > 0 && len(c.m) > c.max {
		oldest := c.order[0]
		c.order = c.order[1:]
		delete(c.m, oldest)
	}
}

// Len returns the number of cached results.
func (c *MemoryCache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.m)
}
