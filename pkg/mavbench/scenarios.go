package mavbench

import (
	"mavbench/internal/env"
)

// ScenarioInfo describes one entry of the scenario catalog: an environment
// family at a graded difficulty, or a frontier preset discovered by the
// adversarial scenario search.
type ScenarioInfo struct {
	// Name is the catalog key ("urban-dense"), the value WithScenario takes.
	Name string `json:"name"`
	// Family is the environment generator ("urban", "indoor", "farm",
	// "disaster", "park", "empty").
	Family string `json:"family"`
	// Grade is the preset tier ("sparse", "default", "dense"), or "frontier"
	// for presets discovered by the adversarial scenario search.
	Grade string `json:"grade"`
	// Difficulty is the grade's position on the continuous [-1, 1] scale
	// (frontier presets carry their calibrated difficulty, which may
	// extrapolate past +1).
	Difficulty float64 `json:"difficulty"`
	// Knobs, for frontier presets, is the pinned knob vector the search
	// converged to; nil for the graded tiers (their knobs follow from
	// Difficulty).
	Knobs *ScenarioKnobs `json:"knobs,omitempty"`
	// Description is a one-line human-readable summary.
	Description string `json:"description"`
}

func scenarioInfo(s env.Scenario) ScenarioInfo {
	info := ScenarioInfo{
		Name:        s.Name,
		Family:      s.Family,
		Grade:       s.Grade,
		Difficulty:  s.Difficulty,
		Description: s.Description,
	}
	if !s.PresetKnobs.IsZero() {
		k := knobsFromEnv(s.PresetKnobs)
		info.Knobs = &k
	}
	return info
}

// Scenarios returns the full scenario catalog, sorted by name: every
// environment family at its sparse, default and dense grades, plus the
// frontier presets discovered by the adversarial scenario search.
func Scenarios() []ScenarioInfo {
	cat := env.ScenarioCatalog()
	out := make([]ScenarioInfo, len(cat))
	for i, s := range cat {
		out[i] = scenarioInfo(s)
	}
	return out
}

// FrontierScenarios returns the catalog's frontier presets — scenarios
// discovered by the adversarial scenario search, each pinning the knob vector
// that maximized the search objective at a named compute operating point —
// sorted by name. See docs/SCENARIOS.md for the method and how to reproduce a
// preset.
func FrontierScenarios() []ScenarioInfo {
	cat := env.FrontierScenarios()
	out := make([]ScenarioInfo, len(cat))
	for i, s := range cat {
		out[i] = scenarioInfo(s)
	}
	return out
}

// ScenarioNames returns the catalog keys, sorted — the valid WithScenario
// values (bare family names are accepted as shorthand for "-default").
func ScenarioNames() []string { return env.Scenarios() }

// ScenarioFamilies returns the environment family names, sorted.
func ScenarioFamilies() []string { return env.ScenarioFamilies() }

// DifficultyGrades returns the difficulty values of the graded presets, in
// increasing difficulty: sparse (-1), default (0), dense (+1). They are the
// natural sample points for a coarse difficulty sweep.
func DifficultyGrades() []float64 { return env.GradeDifficulties() }

// ScenarioSweepSpecs expands a base spec into one spec per named scenario.
// The base seed is kept identical across the expanded specs so the sweep
// compares scenario difficulty on paired worlds rather than mixing in seed
// variation; derive seeds up front (DeriveSeed) when independent worlds are
// wanted. Any Environment override on the base is cleared — the scenario
// names the family. Pass the result to NewCampaign.
func ScenarioSweepSpecs(base Spec, scenarios []string) []Spec {
	specs := make([]Spec, len(scenarios))
	for i, name := range scenarios {
		s := base
		s.Environment = ""
		s.Scenario = name
		specs[i] = s
	}
	return specs
}

// DifficultySweepSpecs expands a base spec into one spec per continuous
// difficulty value (each on the [-1, 1] scale), keeping the base seed
// identical across the expanded specs for paired comparisons. The base's
// scenario (or environment, or workload default) picks the family being
// graded; the scenario's own grade is superseded by each swept value, so
// sweeping from an "urban-dense" base grades the urban family across the
// requested difficulties (a swept 0 is the default grade, not dense).
// Pass the result to NewCampaign.
func DifficultySweepSpecs(base Spec, difficulties []float64) []Spec {
	if base.Scenario != "" {
		if s, ok := env.LookupScenario(base.Scenario); ok {
			base.Scenario = s.Family + "-default"
		}
	}
	specs := make([]Spec, len(difficulties))
	for i, d := range difficulties {
		s := base
		s.Difficulty = d
		specs[i] = s
	}
	return specs
}
