package distrib

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"time"

	"mavbench/pkg/mavbench"
)

// Coordinator shards campaigns across a Fleet of mavbenchd workers. Specs
// are deduplicated by content address (Spec.Hash) so a campaign that repeats
// a spec dispatches it once; an optional shared ResultStore short-circuits
// dispatch entirely for specs any fleet member has already simulated.
//
// Construct with a Fleet and use Stream or Collect; the zero value of every
// other field selects a sensible default.
type Coordinator struct {
	// Fleet is the worker registry (required).
	Fleet *Fleet
	// Store, when non-nil, is consulted before dispatch and filled with
	// every successful result. Point it at the same DiskStore directory as
	// the workers and a spec is never simulated twice anywhere in the fleet.
	Store mavbench.ResultStore
	// Client issues the dispatch requests (default http.DefaultClient; the
	// coordinator never sets a client-level timeout — batch streams are
	// long-lived).
	Client *http.Client
	// Config tunes retry, batching and timeouts; zero values are defaults.
	Config Config
	// FallbackLocal, when set, executes specs on the local engine instead of
	// failing them whenever no healthy worker is available (fleet empty, or
	// every worker down past WaitForWorkers). A coordinator with this set is
	// never worse than a standalone server.
	FallbackLocal bool
	// LocalWorkers bounds the local engine's pool when FallbackLocal runs
	// (<= 0 = one per CPU).
	LocalWorkers int
	// Hooks, when set, observe dispatch events (for metrics). Nil funcs are
	// skipped.
	Hooks Hooks

	// sched arbitrates worker slots between concurrently running campaigns
	// (weighted fair share; see StreamJob).
	sched sched
}

// Hooks observe the coordinator's dispatch lifecycle — the seam mavbenchd
// uses to feed its /metrics endpoint without coupling this package to the
// metrics registry.
type Hooks struct {
	// BatchDone fires after every batch dispatch returns: which worker ran
	// it, how many units it held, how many completed, the batch's wall time,
	// and the dispatch error (nil when the whole batch completed).
	BatchDone func(workerID string, units, completed int, elapsed time.Duration, err error)
}

// unit is one unique spec of a campaign: the unit of dispatch, retry and
// store lookup. indexes lists every campaign position holding this spec.
type unit struct {
	spec     mavbench.Spec
	hash     string
	indexes  []int
	attempts int
}

// Stream executes specs across the fleet and returns a channel delivering
// each Result the moment it completes, in completion order — the distributed
// mirror of Campaign.Stream. The channel is buffered to len(specs), so slow
// consumers never stall dispatch. Specs that never execute (cancellation, or
// no healthy worker within WaitForWorkers after retries) either do not
// appear (cancellation, matching the local engine) or appear as failed
// Results (dispatch exhaustion).
func (co *Coordinator) Stream(ctx context.Context, specs []mavbench.Spec) <-chan mavbench.Result {
	return co.StreamJob(ctx, specs, JobOptions{})
}

// StreamJob is Stream with an explicit scheduling identity. Concurrent
// StreamJob calls on one Coordinator share the fleet under weighted fair
// scheduling: each campaign receives worker dispatches in proportion to its
// effective weight (Weight doubled per Priority level), so a long
// low-priority campaign and a short high-priority one interleave batches
// instead of the first submitter holding every worker until it finishes.
func (co *Coordinator) StreamJob(ctx context.Context, specs []mavbench.Spec, opts JobOptions) <-chan mavbench.Result {
	if ctx == nil {
		ctx = context.Background()
	}
	out := make(chan mavbench.Result, len(specs))
	go co.run(ctx, specs, out, opts)
	return out
}

// Collect executes specs across the fleet and blocks until done, returning
// one Result per spec in submission order — the same ordering guarantee as
// the local Campaign.Collect. Per-spec failures are joined into the returned
// error; successful results are always returned alongside it.
func (co *Coordinator) Collect(ctx context.Context, specs []mavbench.Spec) ([]mavbench.Result, error) {
	return co.CollectJob(ctx, specs, JobOptions{})
}

// CollectJob is Collect with an explicit scheduling identity (see StreamJob).
func (co *Coordinator) CollectJob(ctx context.Context, specs []mavbench.Spec, opts JobOptions) ([]mavbench.Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	results := make([]mavbench.Result, len(specs))
	seen := make([]bool, len(specs))
	for res := range co.StreamJob(ctx, specs, opts) {
		if res.Index >= 0 && res.Index < len(results) {
			results[res.Index] = res
			seen[res.Index] = true
		}
	}
	var errs []error
	for i := range results {
		if !seen[i] {
			err := fmt.Errorf("distrib: spec %d canceled before execution: %w", i, context.Cause(ctx))
			results[i] = mavbench.Result{
				Index:    i,
				SpecHash: specs[i].Hash(),
				Spec:     specs[i].Canonical(),
				Error:    err.Error(),
			}
		}
		if err := results[i].Err(); err != nil {
			errs = append(errs, fmt.Errorf("spec %d (%s): %w", i, results[i].Spec.Workload, err))
		}
	}
	return results, errors.Join(errs...)
}

// dedupe groups specs by content address, preserving first-occurrence order.
func dedupe(specs []mavbench.Spec) []*unit {
	byHash := map[string]*unit{}
	var units []*unit
	for i, spec := range specs {
		hash := spec.Hash()
		if u, ok := byHash[hash]; ok {
			u.indexes = append(u.indexes, i)
			continue
		}
		u := &unit{spec: spec, hash: hash, indexes: []int{i}}
		byHash[hash] = u
		units = append(units, u)
	}
	return units
}

// emit fans one unit's result out to every campaign index holding its spec.
// The out channel holds one slot per campaign spec, so sends never block.
func emit(out chan<- mavbench.Result, u *unit, res mavbench.Result) {
	for _, idx := range u.indexes {
		r := res
		r.Index = idx
		out <- r
	}
}

// dispatchOutcome reports one finished batch dispatch back to the scheduler.
type dispatchOutcome struct {
	workerID string
	units    []*unit // the full batch
	failed   []*unit // the units that did not complete
	err      error   // why the batch (partially) failed, nil on success
}

// run is the per-campaign scheduler loop: it serves store hits, then
// dispatches the remaining unique specs in batches to free healthy workers —
// arbitrated against concurrently running campaigns by the coordinator's
// weighted fair-share scheduler — requeueing the unfinished remainder of
// failed batches until every unit completes, exhausts its attempts, or the
// context is canceled.
func (co *Coordinator) run(ctx context.Context, specs []mavbench.Spec, out chan<- mavbench.Result, opts JobOptions) {
	defer close(out)
	var queue []*unit
	for _, u := range dedupe(specs) {
		if co.Store != nil {
			if hit, ok := co.Store.Get(u.hash); ok {
				hit.Cached = true
				emit(out, u, hit)
				continue
			}
		}
		queue = append(queue, u)
	}

	job := co.sched.register(opts)
	defer co.sched.unregister(job)

	outcomes := make(chan dispatchOutcome)
	inflight := 0
	ctxDone := ctx.Done() // nil for Background-like contexts: blocks forever in select
	canceled := false
	var starvedSince time.Time // first moment the queue had no worker to go to

	// Poll for fleet changes (a worker joining or heartbeating back to
	// health, or another campaign's turn ending) while work is queued with
	// nothing dispatchable.
	ticker := time.NewTicker(50 * time.Millisecond)
	defer ticker.Stop()

	for len(queue) > 0 || inflight > 0 {
		// Launch as many batches as the fair-share scheduler and the free
		// dispatchable workers allow.
		for len(queue) > 0 && !canceled {
			co.sched.setPending(job, len(queue))
			if !co.sched.isTurn(job) {
				break // another campaign's turn; retry on the next tick
			}
			id, url, ok := co.Fleet.acquire()
			if !ok {
				break
			}
			// Spread the remaining queue across the workers that could take
			// it right now (this one plus the still-idle ones).
			share := (len(queue) + co.Fleet.idleHealthy()) / (co.Fleet.idleHealthy() + 1)
			n := max(1, min(share, co.Config.maxBatch()))
			batch := queue[:n]
			queue = queue[n:]
			co.sched.noteDispatched(job, n)
			inflight++
			start := time.Now()
			go func() {
				failed, err := co.dispatch(ctx, url, batch, out)
				if h := co.Hooks.BatchDone; h != nil {
					h(id, len(batch), len(batch)-len(failed), time.Since(start), err)
				}
				outcomes <- dispatchOutcome{workerID: id, units: batch, failed: failed, err: err}
			}()
		}

		// Starvation only means a fleet with zero DISPATCHABLE workers:
		// healthy workers that are merely busy (another campaign, an earlier
		// batch) free up eventually, so queued work just waits for them —
		// but a fleet that is empty, all-down, or all-draining will never
		// take this queue.
		if inflight == 0 && len(queue) > 0 && !canceled && co.Fleet.DispatchableCount() == 0 {
			// Give the fleet WaitForWorkers to produce a healthy worker
			// (registration, or a down one heartbeating back), then give up
			// on dispatch for what's left.
			if starvedSince.IsZero() {
				starvedSince = time.Now()
			}
			if time.Since(starvedSince) >= co.Config.waitForWorkers() {
				if co.FallbackLocal {
					co.runLocal(ctx, queue, out)
				} else {
					for _, u := range queue {
						co.failUnit(out, u, fmt.Errorf("distrib: no healthy worker available (fleet has %d healthy, 0 dispatchable of %d registered)",
							co.Fleet.HealthyCount(), len(co.Fleet.Workers())))
					}
				}
				queue = nil
				co.sched.setPending(job, 0)
				continue
			}
		} else {
			starvedSince = time.Time{}
		}

		select {
		case oc := <-outcomes:
			inflight--
			// A batch aborted because OUR context was canceled is not the
			// worker's fault: don't mark it down or pollute its failure
			// count. (An idle-timeout abort also reads as a canceled child
			// context, but there the parent is still live — that one IS the
			// worker's fault and keeps counting.)
			workerFault := oc.err != nil && !canceled && ctx.Err() == nil
			co.Fleet.release(oc.workerID, len(oc.units), len(oc.units)-len(oc.failed), workerFault)
			if canceled {
				continue // drop requeues, just drain
			}
			for _, u := range oc.failed {
				u.attempts++
				if u.attempts >= co.Config.maxAttempts() {
					co.failUnit(out, u, fmt.Errorf("distrib: spec failed on %d workers, last error: %w", u.attempts, oc.err))
					continue
				}
				queue = append(queue, u)
			}
		case <-ctxDone:
			// Stop launching and requeueing; in-flight dispatches see the
			// same cancellation and drain quickly. Like the local engine,
			// never-started specs simply do not appear on the stream.
			canceled = true
			ctxDone = nil // a closed channel would otherwise spin this select
			queue = nil
			co.sched.setPending(job, 0)
		case <-ticker.C:
		}
	}
}

// runLocal executes the remaining units on the in-process engine — the
// FallbackLocal path when the fleet has starved. Blocking here is fine: the
// scheduler only reaches it with nothing in flight. Results flow through the
// same store and emit path as dispatched ones.
func (co *Coordinator) runLocal(ctx context.Context, units []*unit, out chan<- mavbench.Result) {
	specs := make([]mavbench.Spec, len(units))
	for i, u := range units {
		specs[i] = u.spec
	}
	eng := mavbench.NewCampaign(specs...).SetWorkers(co.LocalWorkers)
	if co.Store != nil {
		eng.SetStore(co.Store)
	}
	for res := range eng.Stream(ctx) {
		if res.Index < 0 || res.Index >= len(units) {
			continue
		}
		emit(out, units[res.Index], res)
	}
	// Specs canceled before starting simply do not appear, matching the
	// dispatched paths' cancellation semantics.
}

// failUnit emits a failed Result for every campaign index of u.
func (co *Coordinator) failUnit(out chan<- mavbench.Result, u *unit, err error) {
	emit(out, u, mavbench.Result{
		SpecHash: u.hash,
		Spec:     u.spec.Canonical(),
		Error:    err.Error(),
	})
}

// RunRequest is the POST /v1/run wire body — the batch the coordinator
// dispatches and the worker executes. The server and client packages share
// this type so the endpoint cannot silently desynchronize.
type RunRequest struct {
	Specs []mavbench.Spec `json:"specs"`
}

// dispatch sends one batch to the worker at baseURL and streams its NDJSON
// results, emitting each completed unit's result (and storing successes) as
// lines arrive. It returns the units that did not complete and the reason.
func (co *Coordinator) dispatch(ctx context.Context, baseURL string, units []*unit, out chan<- mavbench.Result) (failed []*unit, err error) {
	specs := make([]mavbench.Spec, len(units))
	for i, u := range units {
		specs[i] = u.spec
	}
	body, err := json.Marshal(RunRequest{Specs: specs})
	if err != nil {
		return units, fmt.Errorf("encoding batch: %w", err)
	}

	reqCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	// Idle timeout: a worker that stops producing results (wedged, or its
	// network silently gone) gets its request canceled, which requeues the
	// remainder. Reset on every line.
	var idle *time.Timer
	if d := co.Config.resultTimeout(); d > 0 {
		idle = time.AfterFunc(d, cancel)
		defer idle.Stop()
	}

	req, err := http.NewRequestWithContext(reqCtx, http.MethodPost, baseURL+"/v1/run", bytes.NewReader(body))
	if err != nil {
		return units, err
	}
	req.Header.Set("Content-Type", "application/json")
	client := co.Client
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Do(req)
	if err != nil {
		return units, fmt.Errorf("dispatching batch: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return units, fmt.Errorf("worker returned %s: %s", resp.Status, DecodeErrorBody(resp.Body))
	}

	done := make([]bool, len(units))
	completed := 0
	br := bufio.NewReader(resp.Body)
	for completed < len(units) {
		line, rerr := br.ReadBytes('\n')
		if len(bytes.TrimSpace(line)) > 0 {
			if idle != nil {
				idle.Reset(co.Config.resultTimeout())
			}
			var res mavbench.Result
			if uerr := json.Unmarshal(line, &res); uerr != nil {
				err = fmt.Errorf("bad result line from worker: %w", uerr)
				break
			}
			if res.Index < 0 || res.Index >= len(units) || done[res.Index] {
				err = fmt.Errorf("worker returned out-of-protocol result index %d", res.Index)
				break
			}
			u := units[res.Index]
			done[res.Index] = true
			completed++
			if co.Store != nil && res.OK() {
				co.Store.Put(u.hash, res)
			}
			emit(out, u, res)
		}
		if rerr != nil {
			if completed < len(units) {
				err = fmt.Errorf("worker stream ended early after %d/%d results: %w", completed, len(units), rerr)
			}
			break
		}
	}
	if err == nil && completed == len(units) {
		return nil, nil
	}
	if err == nil {
		err = io.ErrUnexpectedEOF
	}
	for i, u := range units {
		if !done[i] {
			failed = append(failed, u)
		}
	}
	return failed, err
}

// DecodeErrorBody extracts the service's uniform {"error": ...} message
// from an error response body, falling back to the raw (trimmed) text. It
// reads at most 4 KiB. Shared by the coordinator, the worker join loop and
// the HTTP client.
func DecodeErrorBody(r io.Reader) string {
	buf, _ := io.ReadAll(io.LimitReader(r, 4096))
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(buf, &e) == nil && e.Error != "" {
		return e.Error
	}
	return string(bytes.TrimSpace(buf))
}

// SortByIndex orders results by campaign index in place — handy for clients
// that collected a completion-ordered stream and want submission order.
func SortByIndex(results []mavbench.Result) {
	sort.Slice(results, func(i, j int) bool { return results[i].Index < results[j].Index })
}
