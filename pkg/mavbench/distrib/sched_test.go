package distrib_test

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"mavbench/pkg/mavbench"
	"mavbench/pkg/mavbench/distrib"
)

// stubRunWorker is an httptest server speaking just enough of the /v1/run
// protocol for scheduler tests: it streams one canned OK result per spec,
// without simulating anything, pausing perSpec between results so dispatch
// order is observable. record is called with each spec as it is "run".
func stubRunWorker(t *testing.T, perSpec time.Duration, record func(mavbench.Spec)) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !strings.HasSuffix(r.URL.Path, "/v1/run") {
			http.NotFound(w, r)
			return
		}
		var req distrib.RunRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		enc := json.NewEncoder(w)
		for i, spec := range req.Specs {
			if perSpec > 0 {
				time.Sleep(perSpec)
			}
			if record != nil {
				record(spec)
			}
			_ = enc.Encode(mavbench.Result{Index: i, SpecHash: spec.Hash(), Spec: spec.Canonical()})
			if f, ok := w.(http.Flusher); ok {
				f.Flush()
			}
		}
	}))
	t.Cleanup(ts.Close)
	return ts
}

// schedSpecs builds n specs tagged by workload name (the tag never runs, the
// stub worker answers without simulating).
func schedSpecs(tag string, n int) []mavbench.Spec {
	specs := make([]mavbench.Spec, n)
	for i := range specs {
		specs[i] = mavbench.Spec{Workload: tag, Seed: int64(i + 1), MaxMissionTimeS: 30}
	}
	return specs
}

// runCompetingJobs runs two campaigns concurrently over a single-slot fleet
// (one worker, batch size 1, so dispatches are strictly serialized) and
// returns the observed dispatch order as workload tags. Job B starts after
// headStart so A already holds the worker when B arrives — the old FIFO
// behavior would run A to completion first.
func runCompetingJobs(t *testing.T, a, b distrib.JobOptions, nA, nB int, headStart time.Duration) []string {
	t.Helper()
	var mu sync.Mutex
	var order []string
	worker := stubRunWorker(t, 10*time.Millisecond, func(spec mavbench.Spec) {
		mu.Lock()
		order = append(order, spec.Workload)
		mu.Unlock()
	})
	fleet := distrib.NewFleet(distrib.Config{HeartbeatTTL: time.Minute})
	fleet.Register(worker.URL)
	co := &distrib.Coordinator{Fleet: fleet, Config: distrib.Config{MaxBatch: 1, HeartbeatTTL: time.Minute}}

	var wg sync.WaitGroup
	run := func(tag string, n int, opts distrib.JobOptions) {
		defer wg.Done()
		results, err := co.CollectJob(context.Background(), schedSpecs(tag, n), opts)
		if err != nil {
			t.Errorf("job %s: %v", tag, err)
		}
		if len(results) != n {
			t.Errorf("job %s: %d results, want %d", tag, len(results), n)
		}
	}
	wg.Add(2)
	go run("job_a", nA, a)
	time.Sleep(headStart)
	go run("job_b", nB, b)
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	return append([]string(nil), order...)
}

// countBefore returns how many dispatches of tag occur before the LAST
// dispatch of other — i.e. how much tag interleaved into other's lifetime.
func countBefore(order []string, tag, other string) int {
	last := -1
	for i, o := range order {
		if o == other {
			last = i
		}
	}
	n := 0
	for i, o := range order {
		if i < last && o == tag {
			n++
		}
	}
	return n
}

// TestFairShareInterleavesEqualJobs pins the tentpole scheduling guarantee:
// two equal-weight campaigns submitted back-to-back interleave dispatches
// roughly 1:1 instead of the first submitter draining its whole queue first.
func TestFairShareInterleavesEqualJobs(t *testing.T) {
	order := runCompetingJobs(t, distrib.JobOptions{}, distrib.JobOptions{}, 10, 10, 35*time.Millisecond)
	if len(order) != 20 {
		t.Fatalf("observed %d dispatches, want 20 (%v)", len(order), order)
	}
	// Each job must have made real progress inside the other's lifetime.
	if n := countBefore(order, "job_b", "job_a"); n < 4 {
		t.Errorf("job_b got only %d dispatches while job_a was active (order %v)", n, order)
	}
	if n := countBefore(order, "job_a", "job_b"); n < 4 {
		t.Errorf("job_a got only %d dispatches while job_b was active (order %v)", n, order)
	}
}

// TestFairSharePriorityBiasesButNeverStarves pins the priority semantics:
// priority multiplies the dispatch share (2x per level), so a priority-2 job
// overtakes an already-running priority-0 job — but the priority-0 job still
// makes progress while the high-priority one runs (no starvation).
func TestFairSharePriorityBiasesButNeverStarves(t *testing.T) {
	order := runCompetingJobs(t,
		distrib.JobOptions{Priority: 0}, distrib.JobOptions{Priority: 2},
		12, 12, 35*time.Millisecond)
	if len(order) != 24 {
		t.Fatalf("observed %d dispatches, want 24 (%v)", len(order), order)
	}
	aDuringB := countBefore(order, "job_a", "job_b")
	bDuringA := countBefore(order, "job_b", "job_a")
	// No starvation in either direction...
	if aDuringB < 1 {
		t.Errorf("low-priority job starved: %d dispatches during the high-priority job (order %v)", aDuringB, order)
	}
	if bDuringA < 1 {
		t.Errorf("high-priority job starved: %d dispatches during the low-priority job (order %v)", bDuringA, order)
	}
	// ...but the 4x effective weight must show: while the priority-2 job was
	// active it received clearly more than the priority-0 job (expected
	// ~4:1, asserted loosely to stay robust on loaded CI machines).
	if aDuringB >= bDuringA {
		t.Errorf("priority had no effect: %d low-priority vs %d high-priority dispatches interleaved (order %v)",
			aDuringB, bDuringA, order)
	}
}

// TestFairShareSingleJobUnchanged pins backward compatibility: a lone
// campaign is always "its turn" — the scheduler imposes no throttle when
// nothing competes.
func TestFairShareSingleJobUnchanged(t *testing.T) {
	var n int
	var mu sync.Mutex
	worker := stubRunWorker(t, 0, func(mavbench.Spec) { mu.Lock(); n++; mu.Unlock() })
	fleet := distrib.NewFleet(distrib.Config{HeartbeatTTL: time.Minute})
	fleet.Register(worker.URL)
	co := &distrib.Coordinator{Fleet: fleet, Config: distrib.Config{HeartbeatTTL: time.Minute}}
	results, err := co.Collect(context.Background(), schedSpecs("solo", 9))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 9 {
		t.Fatalf("%d results, want 9", len(results))
	}
	mu.Lock()
	defer mu.Unlock()
	if n != 9 {
		t.Errorf("worker ran %d specs, want 9", n)
	}
}
