package distrib

import (
	"testing"
	"time"
)

// fakeClock drives a Fleet's notion of time.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newTestFleet(cfg Config) (*Fleet, *fakeClock) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	f := NewFleet(cfg)
	f.now = clk.now
	return f, clk
}

func TestFleetRegisterIsIdempotentByURL(t *testing.T) {
	f, _ := newTestFleet(Config{})
	a := f.Register("http://w1:8080")
	b := f.Register("http://w1:8080/") // trailing slash normalizes away
	if a.ID != b.ID {
		t.Errorf("re-registration minted a new id: %q vs %q", a.ID, b.ID)
	}
	c := f.Register("http://w2:8080")
	if c.ID == a.ID {
		t.Error("distinct URLs share an id")
	}
	if n := len(f.Workers()); n != 2 {
		t.Errorf("fleet has %d workers, want 2", n)
	}
}

func TestFleetHeartbeatAndTTL(t *testing.T) {
	f, clk := newTestFleet(Config{HeartbeatInterval: time.Second, HeartbeatTTL: 4 * time.Second})
	w := f.Register("http://w1:8080")
	if f.HealthyCount() != 1 {
		t.Fatal("fresh registration not healthy")
	}
	clk.advance(3 * time.Second)
	if f.HealthyCount() != 1 {
		t.Error("worker unhealthy inside TTL")
	}
	clk.advance(2 * time.Second)
	if f.HealthyCount() != 0 {
		t.Error("worker still healthy past TTL")
	}
	if !f.Heartbeat(w.ID) {
		t.Error("heartbeat for known worker rejected")
	}
	if f.HealthyCount() != 1 {
		t.Error("heartbeat did not restore health")
	}
	if f.Heartbeat("wdeadbeef") {
		t.Error("heartbeat for unknown worker accepted")
	}
}

func TestFleetDispatchFailureMarksDownUntilHeartbeat(t *testing.T) {
	f, _ := newTestFleet(Config{})
	w := f.Register("http://w1:8080")
	id, url, ok := f.acquire()
	if !ok || id != w.ID || url != "http://w1:8080" {
		t.Fatalf("acquire = %q %q %v", id, url, ok)
	}
	if _, _, ok := f.acquire(); ok {
		t.Fatal("busy worker acquired twice")
	}
	f.release(id, 3, 1, true) // batch of 3, one completed, then the stream broke
	if f.HealthyCount() != 0 {
		t.Error("failed worker still counts as healthy")
	}
	if _, _, ok := f.acquire(); ok {
		t.Error("down worker dispatchable before heartbeating back")
	}
	f.Heartbeat(id)
	if _, _, ok := f.acquire(); !ok {
		t.Error("worker not dispatchable after heartbeat cleared the down mark")
	}
	st := f.Workers()[0]
	if st.Dispatched != 3 || st.Completed != 1 || st.Failures != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestFleetAcquirePrefersLeastLoaded(t *testing.T) {
	f, _ := newTestFleet(Config{})
	w1 := f.Register("http://w1:8080")
	w2 := f.Register("http://w2:8080")
	id, _, _ := f.acquire()
	f.release(id, 5, 5, false)
	id2, _, ok := f.acquire()
	if !ok {
		t.Fatal("second acquire failed")
	}
	if id2 == id {
		t.Errorf("acquire picked the loaded worker %q over the idle one (workers %q, %q)", id2, w1.ID, w2.ID)
	}
	f.release(id2, 1, 1, false)
	if f.idleHealthy() != 2 {
		t.Errorf("idleHealthy = %d after releases, want 2", f.idleHealthy())
	}
}

func TestFleetDeregister(t *testing.T) {
	f, _ := newTestFleet(Config{})
	w := f.Register("http://w1:8080")
	if !f.Deregister(w.ID) {
		t.Error("deregister of known worker failed")
	}
	if f.Deregister(w.ID) {
		t.Error("double deregister succeeded")
	}
	if n := len(f.Workers()); n != 0 {
		t.Errorf("fleet has %d workers after deregister", n)
	}
}
