package distrib

import (
	"testing"
	"time"
)

// fakeClock drives a Fleet's notion of time.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newTestFleet(cfg Config) (*Fleet, *fakeClock) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	f := NewFleet(cfg)
	f.now = clk.now
	return f, clk
}

func TestFleetRegisterIsIdempotentByURL(t *testing.T) {
	f, _ := newTestFleet(Config{})
	a := f.Register("http://w1:8080")
	b := f.Register("http://w1:8080/") // trailing slash normalizes away
	if a.ID != b.ID {
		t.Errorf("re-registration minted a new id: %q vs %q", a.ID, b.ID)
	}
	c := f.Register("http://w2:8080")
	if c.ID == a.ID {
		t.Error("distinct URLs share an id")
	}
	if n := len(f.Workers()); n != 2 {
		t.Errorf("fleet has %d workers, want 2", n)
	}
}

func TestFleetHeartbeatAndTTL(t *testing.T) {
	f, clk := newTestFleet(Config{HeartbeatInterval: time.Second, HeartbeatTTL: 4 * time.Second})
	w := f.Register("http://w1:8080")
	if f.HealthyCount() != 1 {
		t.Fatal("fresh registration not healthy")
	}
	clk.advance(3 * time.Second)
	if f.HealthyCount() != 1 {
		t.Error("worker unhealthy inside TTL")
	}
	clk.advance(2 * time.Second)
	if f.HealthyCount() != 0 {
		t.Error("worker still healthy past TTL")
	}
	if !f.Heartbeat(w.ID) {
		t.Error("heartbeat for known worker rejected")
	}
	if f.HealthyCount() != 1 {
		t.Error("heartbeat did not restore health")
	}
	if f.Heartbeat("wdeadbeef") {
		t.Error("heartbeat for unknown worker accepted")
	}
}

func TestFleetDispatchFailureMarksDownUntilHeartbeat(t *testing.T) {
	f, clk := newTestFleet(Config{})
	w := f.Register("http://w1:8080")
	id, url, ok := f.acquire()
	if !ok || id != w.ID || url != "http://w1:8080" {
		t.Fatalf("acquire = %q %q %v", id, url, ok)
	}
	if _, _, ok := f.acquire(); ok {
		t.Fatal("busy worker acquired twice")
	}
	f.release(id, 3, 1, true) // batch of 3, one completed, then the stream broke
	if f.HealthyCount() != 0 {
		t.Error("failed worker still counts as healthy")
	}
	if _, _, ok := f.acquire(); ok {
		t.Error("down worker dispatchable before heartbeating back")
	}
	// A heartbeat during the cooldown refreshes liveness but must not clear
	// the down mark (see TestFleetHeartbeatCannotResurrectDuringCooldown).
	f.Heartbeat(id)
	if _, _, ok := f.acquire(); ok {
		t.Error("worker dispatchable before the down cooldown elapsed")
	}
	clk.advance(Config{}.downCooldown())
	f.Heartbeat(id)
	if _, _, ok := f.acquire(); !ok {
		t.Error("worker not dispatchable after a post-cooldown heartbeat cleared the down mark")
	}
	st := f.Workers()[0]
	if st.Dispatched != 3 || st.Completed != 1 || st.Failures != 1 {
		t.Errorf("stats = %+v", st)
	}
}

// TestFleetHeartbeatCannotResurrectDuringCooldown reproduces the latent race
// this fix closes: a worker's heartbeat is in flight while its dispatch
// fails. Before the DownCooldown deadline existed, the beat landing just
// after the down-mark flipped the worker healthy again instantly, so the
// requeued remainder of the failed batch could land straight back on the
// broken worker and burn its remaining attempts.
func TestFleetHeartbeatCannotResurrectDuringCooldown(t *testing.T) {
	f, clk := newTestFleet(Config{DownCooldown: 10 * time.Second})
	w := f.Register("http://w1:8080")
	id, _, _ := f.acquire()
	f.release(id, 2, 0, true)
	// The racing heartbeat arrives "immediately after" the failure.
	f.Heartbeat(w.ID)
	if f.HealthyCount() != 0 {
		t.Fatal("racing heartbeat resurrected a just-failed worker")
	}
	if _, _, ok := f.acquire(); ok {
		t.Fatal("just-failed worker dispatchable despite cooldown")
	}
	// Beats keep arriving during the cooldown; none of them clears it.
	clk.advance(9 * time.Second)
	f.Heartbeat(w.ID)
	if f.HealthyCount() != 0 {
		t.Error("mid-cooldown heartbeat resurrected the worker")
	}
	// The first beat at/after the deadline does.
	clk.advance(time.Second)
	f.Heartbeat(w.ID)
	if f.HealthyCount() != 1 {
		t.Error("post-cooldown heartbeat did not restore health")
	}
}

// TestFleetDownHeartbeatRaceUnderConcurrency hammers Heartbeat from a
// goroutine while dispatches fail: immediately after every failed release
// the worker must be un-acquirable, no matter how the beats interleave.
// Run under -race this also pins the locking.
func TestFleetDownHeartbeatRaceUnderConcurrency(t *testing.T) {
	f, _ := newTestFleet(Config{DownCooldown: time.Hour})
	w := f.Register("http://w1:8080")
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
				f.Heartbeat(w.ID)
			}
		}
	}()
	for i := 0; i < 200; i++ {
		id, _, ok := f.acquire()
		if i == 0 && !ok {
			t.Fatal("first acquire failed")
		}
		if !ok {
			t.Fatalf("iteration %d: down worker acquired after cooldown should forbid it", i)
		}
		f.release(id, 1, 0, true)
		if _, _, ok := f.acquire(); ok {
			t.Fatalf("iteration %d: worker dispatchable right after a failed dispatch", i)
		}
		// Simulate the operator fixing it: re-registration clears the mark.
		f.Register("http://w1:8080")
	}
	close(stop)
	<-done
}

func TestFleetDrain(t *testing.T) {
	f, _ := newTestFleet(Config{})
	w1 := f.Register("http://w1:8080")
	w2 := f.Register("http://w2:8080")
	if !f.Drain(w1.ID) {
		t.Fatal("drain of known worker failed")
	}
	if f.Drain("wdeadbeef") {
		t.Error("drain of unknown worker succeeded")
	}
	// Draining workers stay healthy but are not dispatchable.
	if h := f.HealthyCount(); h != 2 {
		t.Errorf("HealthyCount = %d, want 2 (drain is not ill health)", h)
	}
	if d := f.DispatchableCount(); d != 1 {
		t.Errorf("DispatchableCount = %d, want 1", d)
	}
	id, _, ok := f.acquire()
	if !ok || id != w2.ID {
		t.Errorf("acquire = %q %v, want the undrained worker %q", id, ok, w2.ID)
	}
	if _, _, ok := f.acquire(); ok {
		t.Error("drained worker acquired")
	}
	for _, st := range f.Workers() {
		if st.ID == w1.ID && !st.Draining {
			t.Error("drained worker not reported draining")
		}
	}
	// Heartbeats do not clear a drain; re-registration does.
	f.Heartbeat(w1.ID)
	if f.DispatchableCount() != 1 {
		t.Error("heartbeat cleared the drain mark")
	}
	f.Register("http://w1:8080")
	if f.DispatchableCount() != 2 {
		t.Error("re-registration did not clear the drain mark")
	}
}

// TestFleetDrainFinishesInFlightBatch drains a busy worker: the in-flight
// batch's release still records its stats, and no new acquire reaches it.
func TestFleetDrainFinishesInFlightBatch(t *testing.T) {
	f, _ := newTestFleet(Config{})
	w := f.Register("http://w1:8080")
	id, _, ok := f.acquire()
	if !ok {
		t.Fatal("acquire failed")
	}
	f.Drain(w.ID)
	f.release(id, 4, 4, false) // the in-flight batch finishes normally
	st := f.Workers()[0]
	if st.Dispatched != 4 || st.Completed != 4 || st.Failures != 0 {
		t.Errorf("stats after drained release = %+v", st)
	}
	if _, _, ok := f.acquire(); ok {
		t.Error("drained worker re-acquired after its batch finished")
	}
}

func TestFleetAcquirePrefersLeastLoaded(t *testing.T) {
	f, _ := newTestFleet(Config{})
	w1 := f.Register("http://w1:8080")
	w2 := f.Register("http://w2:8080")
	id, _, _ := f.acquire()
	f.release(id, 5, 5, false)
	id2, _, ok := f.acquire()
	if !ok {
		t.Fatal("second acquire failed")
	}
	if id2 == id {
		t.Errorf("acquire picked the loaded worker %q over the idle one (workers %q, %q)", id2, w1.ID, w2.ID)
	}
	f.release(id2, 1, 1, false)
	if f.idleHealthy() != 2 {
		t.Errorf("idleHealthy = %d after releases, want 2", f.idleHealthy())
	}
}

func TestFleetDeregister(t *testing.T) {
	f, _ := newTestFleet(Config{})
	w := f.Register("http://w1:8080")
	if !f.Deregister(w.ID) {
		t.Error("deregister of known worker failed")
	}
	if f.Deregister(w.ID) {
		t.Error("double deregister succeeded")
	}
	if n := len(f.Workers()); n != 0 {
		t.Errorf("fleet has %d workers after deregister", n)
	}
}
