package distrib_test

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"mavbench/pkg/mavbench"
	"mavbench/pkg/mavbench/distrib"
	"mavbench/pkg/mavbench/server"
)

// goldenTrace mirrors the repository golden-trace schema (see
// golden_trace_test.go at the repo root): one pinned spec plus its exact
// mission metrics.
type goldenTrace struct {
	Name     string        `json:"name"`
	Spec     mavbench.Spec `json:"spec"`
	SpecHash string        `json:"spec_hash"`

	MissionTimeS    float64 `json:"mission_time_s"`
	FlightTimeS     float64 `json:"flight_time_s"`
	DistanceM       float64 `json:"distance_m"`
	AverageSpeedMPS float64 `json:"average_speed_mps"`
	TotalEnergyKJ   float64 `json:"total_energy_kj"`
	RotorEnergyKJ   float64 `json:"rotor_energy_kj"`
	ComputeEnergyKJ float64 `json:"compute_energy_kj"`
	Collisions      float64 `json:"collisions"`
	Replans         float64 `json:"replans"`
	Success         bool    `json:"success"`
	FailureReason   string  `json:"failure_reason,omitempty"`
}

// TestFleetReproducesGoldenTraces is the distributed leg of the golden-trace
// harness: real workload specs pinned at the repo root must produce exactly
// the pinned metrics when sharded across a two-worker fleet. Together with
// the root TestGoldenTraces (local engine vs the same file), this proves
// distributed results are bit-identical to local ones on the real engine,
// not just on test workloads.
func TestFleetReproducesGoldenTraces(t *testing.T) {
	buf, err := os.ReadFile(filepath.Join("..", "..", "..", "testdata", "golden_traces.json"))
	if err != nil {
		t.Fatalf("reading golden traces (regenerate at the repo root with -update): %v", err)
	}
	var want []goldenTrace
	if err := json.Unmarshal(buf, &want); err != nil {
		t.Fatal(err)
	}
	if len(want) < 3 {
		t.Fatalf("golden file has only %d traces", len(want))
	}
	want = want[:3] // one golden mission is ~1s of wall time; three keep the test fast

	w1 := startWorker(t, server.Config{Workers: 1})
	w2 := startWorker(t, server.Config{Workers: 1})
	fleet := distrib.NewFleet(distrib.Config{})
	fleet.Register(w1.URL)
	fleet.Register(w2.URL)
	co := &distrib.Coordinator{Fleet: fleet}

	specs := make([]mavbench.Spec, len(want))
	for i, tr := range want {
		specs[i] = tr.Spec
	}
	results, err := co.Collect(context.Background(), specs)
	if err != nil {
		t.Fatalf("fleet golden campaign: %v", err)
	}

	for i, res := range results {
		got := goldenTrace{
			Name:            want[i].Name,
			Spec:            res.Spec,
			SpecHash:        res.SpecHash,
			MissionTimeS:    res.Report.MissionTimeS,
			FlightTimeS:     res.Report.FlightTimeS,
			DistanceM:       res.Report.DistanceM,
			AverageSpeedMPS: res.Report.AverageSpeed,
			TotalEnergyKJ:   res.Report.TotalEnergyKJ,
			RotorEnergyKJ:   res.Report.RotorEnergyKJ,
			ComputeEnergyKJ: res.Report.ComputeEnergyKJ,
			Collisions:      res.Report.Counters["collisions"],
			Replans:         res.Report.Counters["replans"],
			Success:         res.Report.Success,
			FailureReason:   res.Report.FailureReason,
		}
		gj, err := json.Marshal(got)
		if err != nil {
			t.Fatal(err)
		}
		wj, err := json.Marshal(want[i])
		if err != nil {
			t.Fatal(err)
		}
		if string(gj) != string(wj) {
			t.Errorf("trace %q via the fleet diverged from golden:\n got: %s\nwant: %s", want[i].Name, gj, wj)
		}
	}
}
