package distrib

import "sync"

// JobOptions names a campaign's scheduling identity: who submitted it and
// how its dispatch share compares to concurrently running campaigns. The
// zero value is a weight-1, priority-0 job — exactly the pre-fair-share
// behavior when it runs alone.
type JobOptions struct {
	// Tenant labels the job for observability (it does not affect
	// scheduling by itself; tenant-level shares come from Weight).
	Tenant string
	// Priority raises the job's dispatch share: each level doubles its
	// effective weight (clamped to [0, 8]). Priority is a share multiplier,
	// not preemption — lower-priority campaigns still make progress, they
	// just receive proportionally fewer worker slots.
	Priority int
	// Weight is the job's fair-share weight (<= 0 means 1). Two concurrent
	// jobs with weights 3 and 1 receive worker dispatches roughly 3:1.
	Weight float64
}

// effWeight folds priority into the fair-share weight: each priority level
// doubles the share.
func (o JobOptions) effWeight() float64 {
	w := o.Weight
	if w <= 0 {
		w = 1
	}
	p := o.Priority
	if p < 0 {
		p = 0
	}
	if p > 8 {
		p = 8
	}
	return w * float64(uint(1)<<uint(p))
}

// schedJob is one active campaign in the coordinator's fair-share scheduler.
type schedJob struct {
	opts    JobOptions
	pending int     // unique specs still queued for dispatch
	served  float64 // unique specs dispatched so far (virtual-time numerator)
}

// vtime is the job's weighted virtual time: the scheduler always grants the
// next free worker to the backlogged job with the smallest vtime, which is
// classic weighted fair queuing — a job with twice the effective weight
// accumulates vtime half as fast and therefore receives twice the
// dispatches.
func (j *schedJob) vtime() float64 { return j.served / j.opts.effWeight() }

// sched arbitrates worker slots between concurrently running campaigns.
// Each campaign's run loop registers a job, keeps its pending count current,
// and asks isTurn before acquiring a worker; loops that are refused retry on
// their poll tick, by which time the winning job has either dispatched
// (moving its vtime forward) or gone idle.
type sched struct {
	mu   sync.Mutex
	jobs map[*schedJob]struct{}
}

// register adds a job, starting its virtual time at the minimum vtime of the
// currently backlogged jobs so a newcomer neither monopolizes the fleet
// (vtime 0 would win every slot until it caught up) nor waits behind
// long-running campaigns' accumulated history.
func (s *sched) register(opts JobOptions) *schedJob {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.jobs == nil {
		s.jobs = map[*schedJob]struct{}{}
	}
	j := &schedJob{opts: opts}
	minV, any := 0.0, false
	for other := range s.jobs {
		if v := other.vtime(); !any || v < minV {
			minV, any = v, true
		}
	}
	if any {
		j.served = minV * j.opts.effWeight()
	}
	s.jobs[j] = struct{}{}
	return j
}

func (s *sched) unregister(j *schedJob) {
	s.mu.Lock()
	delete(s.jobs, j)
	s.mu.Unlock()
}

// setPending publishes how many units the job still has queued.
func (s *sched) setPending(j *schedJob, n int) {
	s.mu.Lock()
	j.pending = n
	s.mu.Unlock()
}

// isTurn reports whether j is the backlogged job with the smallest virtual
// time — the one the next free worker belongs to. The check and the
// subsequent Fleet.acquire are deliberately not atomic: the worst case is
// one slot granted slightly out of share order, and the vtime accounting
// self-corrects on the next grant. What matters is that no backlogged job
// can be starved: every grant advances the winner's vtime, so any other
// backlogged job's vtime eventually becomes the smallest.
func (s *sched) isTurn(j *schedJob) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j.pending <= 0 {
		return false
	}
	for other := range s.jobs {
		if other == j || other.pending <= 0 {
			continue
		}
		if other.vtime() < j.vtime() {
			return false
		}
	}
	return true
}

// noteDispatched moves n units from pending to served.
func (s *sched) noteDispatched(j *schedJob, n int) {
	s.mu.Lock()
	j.served += float64(n)
	j.pending -= n
	s.mu.Unlock()
}
