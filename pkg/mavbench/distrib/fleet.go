// Package distrib shards mavbench campaigns across a fleet of mavbenchd
// workers over the service's HTTP API.
//
// Topology: one coordinator process owns a Fleet (the worker registry) and a
// Coordinator (the dispatcher). Workers are ordinary mavbenchd servers that
// register themselves with the coordinator (POST /v1/workers) and heartbeat;
// the coordinator dispatches batches of specs to each worker's synchronous
// batch-run endpoint (POST /v1/run), merges the NDJSON result streams, and
// requeues the unfinished remainder of any failed or timed-out batch onto the
// remaining healthy workers. Results are bit-identical to a local run of the
// same specs: workers run the same deterministic engine, and every spec's
// seed is part of its content address.
//
// See docs/DISTRIBUTED.md for topology, failure semantics and the shared
// result-store layout.
package distrib

import (
	"crypto/rand"
	"encoding/hex"
	"sort"
	"strings"
	"sync"
	"time"
)

// Config tunes the fleet and the dispatcher. The zero value selects the
// defaults noted on each field.
type Config struct {
	// HeartbeatInterval is how often workers are told to heartbeat
	// (default 3s).
	HeartbeatInterval time.Duration
	// HeartbeatTTL is how long after its last heartbeat a worker counts as
	// healthy (default 4x HeartbeatInterval).
	HeartbeatTTL time.Duration
	// MaxAttempts is how many workers a spec batch unit is tried on before
	// its specs fail (default 3).
	MaxAttempts int
	// MaxBatch caps the number of unique specs dispatched to a worker in one
	// batch (default 16).
	MaxBatch int
	// ResultTimeout bounds the wait for the next result on a worker's batch
	// stream; a worker that stalls longer has its batch requeued elsewhere
	// (default 10m; < 0 disables).
	ResultTimeout time.Duration
	// WaitForWorkers bounds how long dispatch waits for a healthy worker to
	// appear before failing the remaining specs (default 1m; < 0 fails
	// immediately).
	WaitForWorkers time.Duration
	// DownCooldown is how long a worker stays undispatchable after a failed
	// dispatch, regardless of heartbeats (default: one HeartbeatInterval).
	// Heartbeats only say the worker's HTTP server is alive — not that
	// whatever broke the dispatch is fixed — so a heartbeat racing the
	// down-mark must not immediately resurrect the worker and burn the
	// requeued batch's remaining attempts on the same broken endpoint.
	DownCooldown time.Duration
}

// HeartbeatIntervalOrDefault returns the heartbeat cadence with the default
// applied — what a coordinator tells registering workers.
func (c Config) HeartbeatIntervalOrDefault() time.Duration { return c.heartbeatInterval() }

func (c Config) heartbeatInterval() time.Duration {
	if c.HeartbeatInterval <= 0 {
		return 3 * time.Second
	}
	return c.HeartbeatInterval
}

func (c Config) heartbeatTTL() time.Duration {
	if c.HeartbeatTTL <= 0 {
		return 4 * c.heartbeatInterval()
	}
	return c.HeartbeatTTL
}

func (c Config) maxAttempts() int {
	if c.MaxAttempts <= 0 {
		return 3
	}
	return c.MaxAttempts
}

func (c Config) maxBatch() int {
	if c.MaxBatch <= 0 {
		return 16
	}
	return c.MaxBatch
}

func (c Config) resultTimeout() time.Duration {
	switch {
	case c.ResultTimeout < 0:
		return 0
	case c.ResultTimeout == 0:
		return 10 * time.Minute
	}
	return c.ResultTimeout
}

func (c Config) downCooldown() time.Duration {
	if c.DownCooldown <= 0 {
		return c.heartbeatInterval()
	}
	return c.DownCooldown
}

func (c Config) waitForWorkers() time.Duration {
	if c.WaitForWorkers < 0 {
		return 0
	}
	if c.WaitForWorkers == 0 {
		return time.Minute
	}
	return c.WaitForWorkers
}

// worker is the fleet's record of one registered mavbenchd. All mutable
// state is guarded by the owning Fleet's mutex.
type worker struct {
	id         string
	url        string
	registered time.Time

	lastBeat time.Time
	busy     bool // a dispatch is in flight
	down     bool // last dispatch failed; cleared by a heartbeat after downUntil
	// downUntil is the dispatch-failure cooldown deadline: heartbeats
	// arriving before it refresh liveness but do NOT clear the down mark, so
	// a heartbeat racing a failure cannot resurrect a broken worker
	// mid-requeue.
	downUntil  time.Time
	draining   bool // finish the in-flight batch, accept no more
	dispatched int64
	completed  int64
	failures   int64
}

// WorkerStatus is an exported snapshot of one worker (the GET /v1/workers
// wire shape).
type WorkerStatus struct {
	ID  string `json:"id"`
	URL string `json:"url"`
	// Healthy means the worker is heartbeating and not marked down.
	Healthy bool `json:"healthy"`
	// Busy means a batch is currently dispatched to it.
	Busy bool `json:"busy"`
	// Draining means the worker finishes its in-flight batch but receives no
	// new ones (POST /v1/workers/{id}/drain). Cleared by re-registration.
	Draining bool `json:"draining,omitempty"`
	// LastHeartbeatAgeS is the age of the last heartbeat in seconds.
	LastHeartbeatAgeS float64 `json:"last_heartbeat_age_s"`
	// Dispatched / Completed / Failures count batch units over the worker's
	// lifetime.
	Dispatched int64 `json:"dispatched"`
	Completed  int64 `json:"completed"`
	Failures   int64 `json:"failures"`
}

// Fleet is the coordinator-side worker registry. It is safe for concurrent
// use. The zero value is not usable; construct with NewFleet.
type Fleet struct {
	cfg Config
	now func() time.Time // injectable for tests

	mu      sync.Mutex
	workers map[string]*worker
}

// NewFleet builds an empty registry.
func NewFleet(cfg Config) *Fleet {
	return &Fleet{cfg: cfg, now: time.Now, workers: map[string]*worker{}}
}

// Config returns the fleet's configuration (defaults resolved by accessors,
// not here).
func (f *Fleet) Config() Config { return f.cfg }

// Register adds (or re-adds) a worker reachable at url and returns its
// status. Registration is idempotent by URL: a worker that restarts and
// registers again keeps one registry entry, freshly marked healthy. An
// explicit re-registration also clears the dispatch-failure cooldown and any
// drain mark — rejoining is an affirmative "send me work".
func (f *Fleet) Register(url string) WorkerStatus {
	url = strings.TrimRight(url, "/")
	f.mu.Lock()
	defer f.mu.Unlock()
	now := f.now()
	for _, w := range f.workers {
		if w.url == url {
			w.lastBeat = now
			w.down = false
			w.downUntil = time.Time{}
			w.draining = false
			return f.statusLocked(w)
		}
	}
	w := &worker{id: newWorkerID(), url: url, registered: now, lastBeat: now}
	f.workers[w.id] = w
	return f.statusLocked(w)
}

// Heartbeat refreshes a worker's liveness; false means the id is unknown
// (the worker should re-register). A heartbeat clears a dispatch-failure
// down mark only once the DownCooldown deadline has passed — a beat that
// races the failure proves nothing about the failure being fixed.
func (f *Fleet) Heartbeat(id string) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	w, ok := f.workers[id]
	if !ok {
		return false
	}
	now := f.now()
	w.lastBeat = now
	if w.down && !now.Before(w.downUntil) {
		w.down = false
	}
	return true
}

// Drain marks a worker as draining: its in-flight batch finishes normally
// but it receives no further dispatches until it re-registers. False means
// the id is unknown.
func (f *Fleet) Drain(id string) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	w, ok := f.workers[id]
	if !ok {
		return false
	}
	w.draining = true
	return true
}

// Deregister removes a worker; false means the id was unknown.
func (f *Fleet) Deregister(id string) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.workers[id]; !ok {
		return false
	}
	delete(f.workers, id)
	return true
}

// Workers returns a stable-ordered snapshot of every registered worker.
func (f *Fleet) Workers() []WorkerStatus {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]WorkerStatus, 0, len(f.workers))
	for _, w := range f.workers {
		out = append(out, f.statusLocked(w))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// HealthyCount returns how many workers are currently heartbeating and not
// marked down (drain does not affect health — a draining worker is alive,
// just not dispatchable).
func (f *Fleet) HealthyCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := 0
	for _, w := range f.workers {
		if f.healthyLocked(w) {
			n++
		}
	}
	return n
}

// DispatchableCount returns how many workers can receive new batches:
// healthy and not draining. This is the number schedulers should gate on —
// a fleet where every worker drains can accept no new work even though all
// of them are healthy.
func (f *Fleet) DispatchableCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := 0
	for _, w := range f.workers {
		if f.healthyLocked(w) && !w.draining {
			n++
		}
	}
	return n
}

// acquire reserves a healthy, idle worker for a dispatch (the least-loaded
// one, by units dispatched) and returns its id and URL; ok is false when no
// worker is available right now.
func (f *Fleet) acquire() (id, url string, ok bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	var pick *worker
	for _, w := range f.workers {
		if !f.healthyLocked(w) || w.busy || w.draining {
			continue
		}
		if pick == nil || w.dispatched < pick.dispatched ||
			(w.dispatched == pick.dispatched && w.id < pick.id) {
			pick = w
		}
	}
	if pick == nil {
		return "", "", false
	}
	pick.busy = true
	return pick.id, pick.url, true
}

// idleHealthy returns how many dispatchable workers are not currently busy.
func (f *Fleet) idleHealthy() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := 0
	for _, w := range f.workers {
		if f.healthyLocked(w) && !w.busy && !w.draining {
			n++
		}
	}
	return n
}

// release returns a worker after a dispatch. units counts the batch units it
// was given, completed how many finished; failed marks the worker down for
// at least DownCooldown and until the first heartbeat after that, so
// requeued work lands on other workers first.
func (f *Fleet) release(id string, units, completed int, failed bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	w, ok := f.workers[id]
	if !ok {
		return
	}
	w.busy = false
	w.dispatched += int64(units)
	w.completed += int64(completed)
	if failed {
		w.failures++
		w.down = true
		w.downUntil = f.now().Add(f.cfg.downCooldown())
	}
}

func (f *Fleet) healthyLocked(w *worker) bool {
	return !w.down && f.now().Sub(w.lastBeat) <= f.cfg.heartbeatTTL()
}

func (f *Fleet) statusLocked(w *worker) WorkerStatus {
	return WorkerStatus{
		ID:                w.id,
		URL:               w.url,
		Healthy:           f.healthyLocked(w),
		Busy:              w.busy,
		Draining:          w.draining,
		LastHeartbeatAgeS: f.now().Sub(w.lastBeat).Seconds(),
		Dispatched:        w.dispatched,
		Completed:         w.completed,
		Failures:          w.failures,
	}
}

// newWorkerID returns a random worker identifier.
func newWorkerID() string {
	var b [6]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(err) // crypto/rand never fails on supported platforms
	}
	return "w" + hex.EncodeToString(b[:])
}
