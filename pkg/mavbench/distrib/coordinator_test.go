package distrib_test

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"mavbench/internal/core"
	"mavbench/internal/des"
	"mavbench/internal/env"
	"mavbench/internal/geom"
	"mavbench/internal/sim"
	"mavbench/pkg/mavbench"
	"mavbench/pkg/mavbench/distrib"
	"mavbench/pkg/mavbench/server"
)

// distribWorkloadSeq makes registered workload names unique per test run so
// the package survives -count=N (the registry panics on duplicate names and
// persists across runs in one process), and so each run gets fresh gate
// channels and call counters.
var distribWorkloadSeq atomic.Int64

func uniqueDistribWorkload(prefix string) string {
	return fmt.Sprintf("%s_%d", prefix, distribWorkloadSeq.Add(1))
}

// fleetWorkload is a one-simulated-second workload for fleet tests. calls
// counts World invocations (i.e. actual simulations); when gateOnce is
// non-nil the first invocation blocks on it.
type fleetWorkload struct {
	name     string
	gateOnce chan struct{}
	calls    atomic.Int64
}

func (w *fleetWorkload) Name() string        { return w.name }
func (w *fleetWorkload) Description() string { return "fake workload for distrib tests" }
func (w *fleetWorkload) World(p core.Params) (*env.World, geom.Vec3, error) {
	if w.calls.Add(1) == 1 && w.gateOnce != nil {
		<-w.gateOnce
	}
	return env.BoundedEmptyWorld(40, 20, p.Seed), geom.V3(0, 0, 0), nil
}
func (w *fleetWorkload) Setup(s *sim.Simulator, p core.Params) error {
	s.Engine().Schedule(des.Seconds(1), "fleet/finish", func(*des.Engine) {
		s.CompleteMission(true, "")
	})
	return nil
}

// startWorker runs a real mavbenchd server as a fleet worker.
func startWorker(t *testing.T, cfg server.Config) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(server.New(cfg).Handler())
	t.Cleanup(ts.Close)
	return ts
}

func specsFor(workload string, n int) []mavbench.Spec {
	specs := make([]mavbench.Spec, n)
	for i := range specs {
		specs[i] = mavbench.Spec{Workload: workload, Seed: int64(i + 1), MaxMissionTimeS: 30}
	}
	return specs
}

// marshalNormalized renders results for equality comparison: the Cached flag
// is scheduling-dependent (which store served what), everything else — spec,
// content address, platform, full report — must match bit for bit.
func marshalNormalized(t *testing.T, results []mavbench.Result) []string {
	t.Helper()
	out := make([]string, len(results))
	for i, res := range results {
		res.Cached = false
		buf, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = string(buf)
	}
	return out
}

// TestFleetVsLocalEquivalence is the distributed-correctness pin: the same
// campaign — including a repeated spec, exercising hash-keyed dedupe —
// sharded across two real workers produces results bit-identical to the
// local engine, in the same (submission) order.
func TestFleetVsLocalEquivalence(t *testing.T) {
	wl := &fleetWorkload{name: uniqueDistribWorkload("distrib_equiv")}
	core.Register(wl)
	specs := specsFor(wl.name, 5)
	specs = append(specs, specs[2]) // repeated spec: one dispatch, two results

	local, err := mavbench.NewCampaign(specs...).Collect(context.Background())
	if err != nil {
		t.Fatalf("local campaign: %v", err)
	}

	w1 := startWorker(t, server.Config{Workers: 2})
	w2 := startWorker(t, server.Config{Workers: 2})
	fleet := distrib.NewFleet(distrib.Config{})
	fleet.Register(w1.URL)
	fleet.Register(w2.URL)
	co := &distrib.Coordinator{Fleet: fleet, Config: distrib.Config{}}

	remote, err := co.Collect(context.Background(), specs)
	if err != nil {
		t.Fatalf("distributed campaign: %v", err)
	}
	if len(remote) != len(specs) {
		t.Fatalf("distributed campaign returned %d results for %d specs", len(remote), len(specs))
	}

	wantJSON := marshalNormalized(t, local)
	gotJSON := marshalNormalized(t, remote)
	for i := range wantJSON {
		if gotJSON[i] != wantJSON[i] {
			t.Errorf("result %d differs between fleet and local:\n fleet: %s\n local: %s", i, gotJSON[i], wantJSON[i])
		}
	}

	// The campaign was actually sharded: both workers took dispatches.
	for _, st := range fleet.Workers() {
		if st.Dispatched == 0 {
			t.Errorf("worker %s (%s) never received a batch", st.ID, st.URL)
		}
		if st.Failures != 0 {
			t.Errorf("worker %s recorded %d failures", st.ID, st.Failures)
		}
	}
}

// TestCoordinatorRequeuesOnWorkerDeath kills the worker holding a batch
// mid-campaign and requires the remainder to complete on the surviving
// worker — the fleet's central failure-semantics pin.
func TestCoordinatorRequeuesOnWorkerDeath(t *testing.T) {
	wl := &fleetWorkload{name: uniqueDistribWorkload("distrib_requeue"), gateOnce: make(chan struct{})}
	core.Register(wl)

	w1 := startWorker(t, server.Config{Workers: 1})
	w2 := startWorker(t, server.Config{Workers: 1})
	// Free the gated first run at the end so the orphaned engine goroutine
	// on the killed worker can finish before the httptest servers close.
	gateReleased := false
	releaseGate := func() {
		if !gateReleased {
			gateReleased = true
			close(wl.gateOnce)
		}
	}
	t.Cleanup(releaseGate)

	fleet := distrib.NewFleet(distrib.Config{HeartbeatTTL: time.Minute})
	fleet.Register(w1.URL)
	fleet.Register(w2.URL)
	co := &distrib.Coordinator{Fleet: fleet, Config: distrib.Config{HeartbeatTTL: time.Minute}}

	// Two unique specs across two workers: one batch each. The first World()
	// call fleet-wide blocks, wedging whichever worker got that spec.
	specs := specsFor(wl.name, 2)
	stream := co.Stream(context.Background(), specs)

	// The unblocked spec completes first; its worker goes idle, leaving
	// exactly one worker busy — the wedged one. Kill it.
	var first mavbench.Result
	select {
	case first = <-stream:
	case <-time.After(30 * time.Second):
		t.Fatal("no result arrived while one worker was wedged")
	}
	if !first.OK() {
		t.Fatalf("first result failed: %v", first.Err())
	}
	// The finished batch's bookkeeping races the result delivery: wait until
	// the scheduler has released the done worker, leaving exactly one busy —
	// the wedged one.
	var killed string
	deadline := time.Now().Add(10 * time.Second)
	for killed == "" {
		var busy []string
		for _, st := range fleet.Workers() {
			if st.Busy {
				busy = append(busy, st.URL)
			}
		}
		if len(busy) == 1 {
			killed = busy[0]
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("expected exactly one busy worker, have %d", len(busy))
		}
		time.Sleep(5 * time.Millisecond)
	}
	for _, ts := range []*httptest.Server{w1, w2} {
		if ts.URL == killed {
			ts.CloseClientConnections() // snap the dispatch stream mid-flight
		}
	}

	// The broken stream must requeue the spec onto the survivor, where the
	// (now past its once-gate) workload runs to completion.
	var second mavbench.Result
	select {
	case second = <-stream:
	case <-time.After(30 * time.Second):
		t.Fatal("requeued spec never completed on the surviving worker")
	}
	if !second.OK() {
		t.Fatalf("requeued result failed: %v", second.Err())
	}
	if _, open := <-stream; open {
		t.Fatal("stream delivered more results than specs")
	}

	killedFailures := int64(0)
	for _, st := range fleet.Workers() {
		if st.URL == killed {
			killedFailures = st.Failures
			if st.Healthy {
				t.Error("killed worker still marked healthy")
			}
		}
	}
	if killedFailures != 1 {
		t.Errorf("killed worker recorded %d failures, want 1", killedFailures)
	}
	releaseGate()
}

// TestCoordinatorServesRepeatsFromSharedStore pins the fleet-wide
// never-resimulate guarantee: with a shared disk store, a second campaign
// over the same specs is served entirely from the store — zero new
// simulations anywhere.
func TestCoordinatorServesRepeatsFromSharedStore(t *testing.T) {
	wl := &fleetWorkload{name: uniqueDistribWorkload("distrib_store")}
	core.Register(wl)

	store, err := mavbench.NewDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// Workers and coordinator share one store, as a fleet on a common
	// filesystem would.
	w1 := startWorker(t, server.Config{Workers: 1, Store: store})
	w2 := startWorker(t, server.Config{Workers: 1, Store: store})
	fleet := distrib.NewFleet(distrib.Config{})
	fleet.Register(w1.URL)
	fleet.Register(w2.URL)
	co := &distrib.Coordinator{Fleet: fleet, Store: store}

	specs := specsFor(wl.name, 4)
	first, err := co.Collect(context.Background(), specs)
	if err != nil {
		t.Fatalf("first campaign: %v", err)
	}
	simulated := wl.calls.Load()
	if simulated != 4 {
		t.Fatalf("first campaign simulated %d runs, want 4", simulated)
	}

	second, err := co.Collect(context.Background(), specs)
	if err != nil {
		t.Fatalf("second campaign: %v", err)
	}
	if got := wl.calls.Load(); got != simulated {
		t.Errorf("repeat campaign re-simulated: %d runs total, want still %d", got, simulated)
	}
	for i, res := range second {
		if !res.Cached {
			t.Errorf("repeat result %d not marked cached", i)
		}
	}
	want := marshalNormalized(t, first)
	got := marshalNormalized(t, second)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("store-served result %d differs from simulated:\n store: %s\n fresh: %s", i, got[i], want[i])
		}
	}
}

// TestCoordinatorTimesOutStalledWorker points one fleet slot at a server
// that accepts batches and never produces results: the idle-result timeout
// must requeue its batch onto the real worker.
func TestCoordinatorTimesOutStalledWorker(t *testing.T) {
	stallWl := &fleetWorkload{name: uniqueDistribWorkload("distrib_stall")}
	core.Register(stallWl)

	hung := make(chan struct{})
	t.Cleanup(func() { close(hung) })
	stalled := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !strings.HasSuffix(r.URL.Path, "/v1/run") {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
		select {
		case <-hung:
		case <-r.Context().Done():
		}
	}))
	t.Cleanup(stalled.Close)
	good := startWorker(t, server.Config{Workers: 1})

	fleet := distrib.NewFleet(distrib.Config{})
	fleet.Register(stalled.URL)
	fleet.Register(good.URL)
	co := &distrib.Coordinator{Fleet: fleet, Config: distrib.Config{ResultTimeout: 500 * time.Millisecond}}

	results, err := co.Collect(context.Background(), specsFor(stallWl.name, 4))
	if err != nil {
		t.Fatalf("campaign across a stalled worker: %v", err)
	}
	for i, res := range results {
		if !res.OK() {
			t.Errorf("result %d failed: %v", i, res.Err())
		}
	}
}

// TestCoordinatorFallsBackToLocalExecution pins the degraded mode: with
// FallbackLocal set, a starved coordinator (here: an empty fleet) runs the
// remaining specs on the in-process engine instead of failing them.
func TestCoordinatorFallsBackToLocalExecution(t *testing.T) {
	wl := &fleetWorkload{name: uniqueDistribWorkload("distrib_fallback")}
	core.Register(wl)
	co := &distrib.Coordinator{
		Fleet:         distrib.NewFleet(distrib.Config{}),
		Config:        distrib.Config{WaitForWorkers: -1},
		FallbackLocal: true,
	}
	results, err := co.Collect(context.Background(), specsFor(wl.name, 3))
	if err != nil {
		t.Fatalf("fallback campaign: %v", err)
	}
	for i, res := range results {
		if !res.OK() {
			t.Errorf("result %d failed despite local fallback: %v", i, res.Err())
		}
	}
	if got := wl.calls.Load(); got != 3 {
		t.Errorf("local fallback simulated %d runs, want 3", got)
	}
}

// TestCoordinatorFailsFastWithNoWorkers pins the starvation path: an empty
// fleet with WaitForWorkers < 0 fails every spec immediately, with an error
// that says what happened.
func TestCoordinatorFailsFastWithNoWorkers(t *testing.T) {
	noWl := &fleetWorkload{name: uniqueDistribWorkload("distrib_noworkers")}
	core.Register(noWl)
	co := &distrib.Coordinator{Fleet: distrib.NewFleet(distrib.Config{}), Config: distrib.Config{WaitForWorkers: -1}}
	results, err := co.Collect(context.Background(), specsFor(noWl.name, 2))
	if err == nil {
		t.Fatal("campaign with no workers reported success")
	}
	for i, res := range results {
		if res.OK() {
			t.Errorf("result %d succeeded with no workers", i)
		} else if !strings.Contains(res.Error, "no healthy worker") {
			t.Errorf("result %d error = %q", i, res.Error)
		}
	}
}
