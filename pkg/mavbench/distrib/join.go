package distrib

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"time"
)

// JoinConfig parameterizes a worker's membership in a fleet.
type JoinConfig struct {
	// Coordinator is the coordinator's base URL, e.g. "http://coord:8080".
	Coordinator string
	// Advertise is the URL the coordinator should dispatch to — this
	// worker's own /v1 API as reachable from the coordinator.
	Advertise string
	// Token, when non-empty, is sent as a bearer token on registration and
	// heartbeats; it must match the coordinator's fleet token.
	Token string
	// Client issues the registration and heartbeat requests (default: a
	// client with a 10s timeout).
	Client *http.Client
	// Logf, when non-nil, receives membership events (joined, lost, retry).
	Logf func(format string, args ...any)
}

// RegisterRequest is the POST /v1/workers wire body. Like RunRequest, it is
// shared by the worker join loop and the server so the endpoint cannot
// silently desynchronize.
type RegisterRequest struct {
	URL string `json:"url"`
}

// RegisterResponse is the POST /v1/workers response body: the assigned
// worker id and the heartbeat cadence the coordinator expects.
type RegisterResponse struct {
	ID                 string  `json:"id"`
	HeartbeatIntervalS float64 `json:"heartbeat_interval_s"`
}

// WorkerListResponse is the GET /v1/workers wire body.
type WorkerListResponse struct {
	Workers []WorkerStatus `json:"workers"`
	Healthy int            `json:"healthy"`
}

// Join registers the worker with the coordinator and heartbeats until ctx is
// canceled, re-registering whenever the coordinator forgets it (a restart) or
// becomes unreachable. It returns only when ctx ends — run it in a goroutine
// next to the worker's HTTP server.
func Join(ctx context.Context, cfg JoinConfig) error {
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: 10 * time.Second}
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	coord := strings.TrimRight(cfg.Coordinator, "/")

	var id string
	interval := Config{}.heartbeatInterval()
	for {
		if id == "" {
			reg, err := register(ctx, client, coord, cfg.Advertise, cfg.Token)
			if err != nil {
				if ctx.Err() != nil {
					return ctx.Err()
				}
				logf("distrib: registration with %s failed (retrying): %v", coord, err)
			} else {
				id = reg.ID
				if reg.HeartbeatIntervalS > 0 {
					interval = time.Duration(reg.HeartbeatIntervalS * float64(time.Second))
				}
				logf("distrib: joined fleet at %s as %s (heartbeat every %v)", coord, id, interval)
			}
		} else {
			ok, err := heartbeat(ctx, client, coord, id, cfg.Token)
			switch {
			case ctx.Err() != nil:
				return ctx.Err()
			case err != nil:
				logf("distrib: heartbeat to %s failed (retrying): %v", coord, err)
			case !ok:
				// The coordinator restarted and forgot us: rejoin.
				logf("distrib: coordinator at %s no longer knows %s, re-registering", coord, id)
				id = ""
				continue
			}
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(interval):
		}
	}
}

func register(ctx context.Context, client *http.Client, coord, advertise, token string) (RegisterResponse, error) {
	body, err := json.Marshal(RegisterRequest{URL: advertise})
	if err != nil {
		return RegisterResponse{}, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, coord+"/v1/workers", bytes.NewReader(body))
	if err != nil {
		return RegisterResponse{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	setFleetAuth(req, token)
	resp, err := client.Do(req)
	if err != nil {
		return RegisterResponse{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusCreated {
		return RegisterResponse{}, fmt.Errorf("coordinator returned %s: %s", resp.Status, DecodeErrorBody(resp.Body))
	}
	var reg RegisterResponse
	if err := json.NewDecoder(resp.Body).Decode(&reg); err != nil {
		return RegisterResponse{}, fmt.Errorf("decoding registration response: %w", err)
	}
	return reg, nil
}

// setFleetAuth attaches the fleet bearer token, when one is configured.
func setFleetAuth(req *http.Request, token string) {
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
}

// heartbeat returns ok=false (with nil error) when the coordinator does not
// know the worker id, signalling the caller to re-register.
func heartbeat(ctx context.Context, client *http.Client, coord, id, token string) (bool, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, coord+"/v1/workers/"+id+"/heartbeat", nil)
	if err != nil {
		return false, err
	}
	setFleetAuth(req, token)
	resp, err := client.Do(req)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusNotFound:
		return false, nil
	case resp.StatusCode >= 300:
		return false, fmt.Errorf("coordinator returned %s: %s", resp.Status, DecodeErrorBody(resp.Body))
	}
	return true, nil
}
