package mavbench

import (
	"context"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"mavbench/internal/core"
	"mavbench/internal/des"
	"mavbench/internal/env"
	"mavbench/internal/geom"
	"mavbench/internal/sim"
)

// testWorkload is a fast fake workload: one simulated second, then success.
// gate (when non-nil) blocks world construction until the channel is closed,
// letting tests hold a run mid-flight; runs counts world constructions.
type testWorkload struct {
	name string
	gate chan struct{}
	runs atomic.Int64
}

func (w *testWorkload) Name() string        { return w.name }
func (w *testWorkload) Description() string { return "fake workload for public API tests" }
func (w *testWorkload) World(p core.Params) (*env.World, geom.Vec3, error) {
	if w.gate != nil {
		<-w.gate
	}
	w.runs.Add(1)
	return env.BoundedEmptyWorld(40, 20, p.Seed), geom.V3(0, 0, 0), nil
}
func (w *testWorkload) Setup(s *sim.Simulator, p core.Params) error {
	s.Engine().Schedule(des.Seconds(1), "test/finish", func(*des.Engine) {
		s.CompleteMission(true, "")
	})
	return nil
}

func mustSpec(t *testing.T, workload string, opts ...Option) Spec {
	t.Helper()
	spec, err := NewSpec(workload, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

func recvResult(t *testing.T, ch <-chan Result, what string) Result {
	t.Helper()
	select {
	case res, ok := <-ch:
		if !ok {
			t.Fatalf("stream closed while waiting for %s", what)
		}
		return res
	case <-time.After(30 * time.Second):
		t.Fatalf("timed out waiting for %s", what)
	}
	panic("unreachable")
}

// TestCampaignStreamsIncrementally guards the streaming contract: the first
// result must be observable on the channel while a later run is still
// executing. A gated workload holds run 1 mid-flight until the test has
// already received run 0's result; if results were only delivered after the
// whole campaign finished, this test would time out.
func TestCampaignStreamsIncrementally(t *testing.T) {
	fast := &testWorkload{name: "api_stream_fast"}
	slow := &testWorkload{name: "api_stream_slow", gate: make(chan struct{})}
	core.Register(fast)
	core.Register(slow)

	campaign := NewCampaign(
		mustSpec(t, fast.name, WithSeed(1), WithMaxMissionTime(30)),
		mustSpec(t, slow.name, WithSeed(2), WithMaxMissionTime(30)),
	).SetWorkers(1) // one worker: run 0 completes first, run 1 blocks on the gate

	ch := campaign.Stream(context.Background())
	first := recvResult(t, ch, "the first result (while run 1 is still gated)")
	if first.Index != 0 || !first.OK() {
		t.Fatalf("first streamed result = %+v", first)
	}
	if slow.runs.Load() != 0 {
		t.Fatal("gated run finished before the first result was received")
	}
	close(slow.gate)
	second := recvResult(t, ch, "the gated result")
	if second.Index != 1 || !second.OK() {
		t.Fatalf("second streamed result = %+v", second)
	}
	if _, open := <-ch; open {
		t.Fatal("stream not closed after the last result")
	}
}

func TestCampaignCacheServesRepeatedSpecs(t *testing.T) {
	wl := &testWorkload{name: "api_cache_workload"}
	core.Register(wl)
	spec := mustSpec(t, wl.name, WithSeed(5), WithMaxMissionTime(30))
	cache := NewMemoryCache()

	fresh, err := NewCampaign(spec).SetCache(cache).Collect(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if fresh[0].Cached {
		t.Error("first execution claims to be cached")
	}
	if cache.Len() != 1 {
		t.Fatalf("cache holds %d results", cache.Len())
	}
	ran := wl.runs.Load()

	served, err := NewCampaign(spec).SetCache(cache).Collect(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !served[0].Cached {
		t.Error("repeated spec not served from cache")
	}
	if wl.runs.Load() != ran {
		t.Errorf("repeated spec re-simulated: %d -> %d runs", ran, wl.runs.Load())
	}
	if served[0].SpecHash != fresh[0].SpecHash || served[0].Report.MissionTimeS != fresh[0].Report.MissionTimeS {
		t.Error("cached result diverges from the fresh one")
	}
}

func TestBoundedMemoryCacheEviction(t *testing.T) {
	c := NewBoundedMemoryCache(2)
	c.Put("a", Result{SpecHash: "a"})
	c.Put("b", Result{SpecHash: "b"})
	c.Put("a", Result{SpecHash: "a", Platform: "updated"}) // update, not a new slot
	if c.Len() != 2 {
		t.Fatalf("cache holds %d entries, want 2", c.Len())
	}
	c.Put("c", Result{SpecHash: "c"}) // evicts the oldest insertion ("a")
	if c.Len() != 2 {
		t.Fatalf("cache holds %d entries after eviction, want 2", c.Len())
	}
	if _, ok := c.Get("a"); ok {
		t.Error("oldest entry not evicted")
	}
	for _, want := range []string{"b", "c"} {
		if _, ok := c.Get(want); !ok {
			t.Errorf("entry %q evicted prematurely", want)
		}
	}
}

func TestCollectOrderAndErrorAttribution(t *testing.T) {
	wl := &testWorkload{name: "api_collect_workload"}
	core.Register(wl)
	good := mustSpec(t, wl.name, WithSeed(9), WithMaxMissionTime(30))
	bad := Spec{Workload: "no_such_workload"} // hand-assembled, skips NewSpec validation

	results, err := NewCampaign(good, bad).Collect(context.Background())
	if len(results) != 2 {
		t.Fatalf("got %d results", len(results))
	}
	if !results[0].OK() || results[0].Index != 0 {
		t.Errorf("good run failed: %+v", results[0])
	}
	if results[1].OK() || !strings.Contains(results[1].Error, "unknown workload") {
		t.Errorf("bad spec's failure not surfaced: %+v", results[1])
	}
	if err == nil || !strings.Contains(err.Error(), "no_such_workload") {
		t.Errorf("joined error = %v", err)
	}
}

func TestCampaignCancellation(t *testing.T) {
	wl := &testWorkload{name: "api_cancel_workload"}
	core.Register(wl)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // canceled before any run starts

	results, err := NewCampaign(
		mustSpec(t, wl.name, WithSeed(1), WithMaxMissionTime(30)),
		mustSpec(t, wl.name, WithSeed(2), WithMaxMissionTime(30)),
	).Collect(ctx)
	if err == nil {
		t.Fatal("canceled campaign reported success")
	}
	for i, res := range results {
		if res.OK() {
			t.Errorf("run %d claims success under cancellation", i)
		}
	}
	if wl.runs.Load() != 0 {
		t.Errorf("%d runs executed after cancellation", wl.runs.Load())
	}
}

func TestRunConvenience(t *testing.T) {
	wl := &testWorkload{name: "api_run_workload"}
	core.Register(wl)
	res, err := Run(context.Background(), mustSpec(t, wl.name, WithSeed(3), WithMaxMissionTime(30)))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Report.Success || res.Platform == "" || res.SpecHash == "" {
		t.Errorf("result = %+v", res)
	}
}

// TestCampaignCancellationMidStream cancels a campaign after its first
// result has already been delivered: the in-flight run must still surface
// its result, runs that never started must be reported as canceled by
// Collect-style consumers, and the stream must close promptly.
func TestCampaignCancellationMidStream(t *testing.T) {
	fast := &testWorkload{name: "api_midcancel_fast"}
	gated := &testWorkload{name: "api_midcancel_gated", gate: make(chan struct{})}
	core.Register(fast)
	core.Register(gated)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	specs := []Spec{
		mustSpec(t, fast.name, WithSeed(1), WithMaxMissionTime(30)),
		mustSpec(t, gated.name, WithSeed(2), WithMaxMissionTime(30)),
		mustSpec(t, gated.name, WithSeed(3), WithMaxMissionTime(30)),
	}
	ch := NewCampaign(specs...).SetWorkers(1).Stream(ctx)

	first := recvResult(t, ch, "the fast run's result")
	if first.Index != 0 || !first.OK() {
		t.Fatalf("first streamed result = %+v", first)
	}
	// Run 1 is now blocked inside world construction. Cancel the campaign,
	// then release the gate: the started run completes and streams; run 2
	// must never start.
	cancel()
	close(gated.gate)

	second := recvResult(t, ch, "the in-flight gated result")
	if second.Index != 1 || !second.OK() {
		t.Fatalf("in-flight run's result = %+v", second)
	}
	if res, ok := <-ch; ok {
		t.Fatalf("unexpected result after cancellation: %+v", res)
	}
	if gated.runs.Load() != 1 {
		t.Errorf("gated workload ran %d times, want 1 (run 2 canceled before start)", gated.runs.Load())
	}
}
