package mavbench

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"testing"
)

func TestSearchRequestDefaultsAndValidation(t *testing.T) {
	r := SearchRequest{Workload: "package_delivery"}
	if err := r.Validate(); err != nil {
		t.Fatalf("default request invalid: %v", err)
	}
	// Defaults: (3+1 generations) × 8 candidates × 2 repeats + 2 baseline.
	if got, want := r.TotalRuns(), 4*8*2+2; got != want {
		t.Errorf("TotalRuns = %d, want %d", got, want)
	}

	cases := []struct {
		name string
		req  SearchRequest
		want string
	}{
		{"unknown objective", SearchRequest{Workload: "package_delivery", Objective: "speed"}, "objective"},
		{"unknown family", SearchRequest{Workload: "package_delivery", Family: "lunar"}, "family"},
		{"elites exceed population", SearchRequest{Workload: "package_delivery", Population: 4, Elites: 8}, "elites"},
		{"unknown workload", SearchRequest{Workload: "no_such_workload", Family: "urban"}, "workload"},
	}
	for _, tc := range cases {
		err := tc.req.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: Validate() = %v, want mention of %q", tc.name, err, tc.want)
		}
	}
}

// fakeSearchRunner scores candidates from a closed-form function of their
// knobs — no simulation — while recording every batch it sees.
type fakeSearchRunner struct {
	batches [][]Spec
}

func (f *fakeSearchRunner) run(_ context.Context, specs []Spec) ([]Result, error) {
	f.batches = append(f.batches, specs)
	results := make([]Result, len(specs))
	for i, spec := range specs {
		k := spec.ScenarioKnobs
		if k == nil {
			return nil, fmt.Errorf("spec %d has no scenario knobs", i)
		}
		// More obstacles and faster traffic → more collisions, lower speed.
		hostility := k.ObstacleDensity + k.DynamicSpeed
		results[i] = Result{
			Index:    i,
			Spec:     spec,
			SpecHash: spec.Hash(),
		}
		results[i].Report.MissionTimeS = 60
		results[i].Report.AverageSpeed = 5 - hostility
		results[i].Report.Success = hostility < 4
		results[i].Report.Counters = map[string]float64{"collisions": hostility}
	}
	return results, nil
}

func TestSearchFrontierWithInjectedRunner(t *testing.T) {
	req := SearchRequest{
		Workload:    "package_delivery",
		Cores:       2,
		FreqGHz:     0.8,
		Seed:        42,
		Generations: 2,
		Population:  5,
		Repeats:     2,
	}
	runner := &fakeSearchRunner{}
	f, err := SearchFrontier(context.Background(), req, WithSearchRunner(runner.run))
	if err != nil {
		t.Fatal(err)
	}

	// Batch shape: one baseline batch of Repeats specs, then one batch of
	// Population×Repeats specs per generation (random init + refinements).
	if got, want := len(runner.batches), 1+req.Generations+1; got != want {
		t.Fatalf("runner saw %d batches, want %d", got, want)
	}
	if got := len(runner.batches[0]); got != req.Repeats {
		t.Errorf("baseline batch has %d specs, want %d", got, req.Repeats)
	}
	for gi, batch := range runner.batches[1:] {
		if got, want := len(batch), req.Population*req.Repeats; got != want {
			t.Errorf("generation %d batch has %d specs, want %d", gi, got, want)
		}
		// Repeats share derived seeds across candidates so scores compare
		// paired missions, and every spec pins the requested operating point.
		for i, spec := range batch {
			rep := i % req.Repeats
			if want := DeriveSeed(req.Seed, req.Workload, req.Cores, req.FreqGHz, rep); spec.Seed != want {
				t.Fatalf("generation %d spec %d seed = %d, want derived %d", gi, i, spec.Seed, want)
			}
			if spec.Cores != req.Cores || spec.FreqGHz != req.FreqGHz {
				t.Fatalf("generation %d spec %d runs at %dx%g, want %dx%g",
					gi, i, spec.Cores, spec.FreqGHz, req.Cores, req.FreqGHz)
			}
			if spec.Scenario != "urban-default" {
				t.Fatalf("generation %d spec %d scenario = %q, want urban-default", gi, i, spec.Scenario)
			}
		}
	}

	if got, want := f.TotalRuns, (req.Generations+1)*req.Population*req.Repeats+req.Repeats; got != want {
		t.Errorf("TotalRuns = %d, want %d", got, want)
	}
	if len(f.Generations) != req.Generations+1 {
		t.Fatalf("frontier has %d generations, want %d", len(f.Generations), req.Generations+1)
	}
	// The fake objective is maximized at the obstacle_density/dynamic_speed
	// corner; the search must improve on the random init and report a best
	// dominating every generation.
	if f.Best.Score < f.Generations[0].BestScore {
		t.Errorf("best %v below random-init best %v", f.Best.Score, f.Generations[0].BestScore)
	}
	last := f.Generations[len(f.Generations)-1]
	if last.MeanScore <= f.Generations[0].MeanScore {
		t.Errorf("population did not concentrate: init mean %v, final mean %v",
			f.Generations[0].MeanScore, last.MeanScore)
	}
	if f.Baseline.Knobs.ObstacleDensity != 1 || f.Baseline.SuccessRate != 1 {
		t.Errorf("baseline malformed: %+v", f.Baseline)
	}

	// Determinism: the same request over the same runner yields a
	// byte-identical frontier.
	again, err := SearchFrontier(context.Background(), req, WithSearchRunner((&fakeSearchRunner{}).run))
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(f)
	b, _ := json.Marshal(again)
	if string(a) != string(b) {
		t.Errorf("same request produced different frontiers:\n%s\n%s", a, b)
	}
}

func TestSearchFrontierSurfacesRunErrors(t *testing.T) {
	broken := func(_ context.Context, specs []Spec) ([]Result, error) {
		results := make([]Result, len(specs))
		for i := range results {
			results[i] = Result{Index: i, Error: "engine exploded"}
		}
		return results, nil
	}
	_, err := SearchFrontier(context.Background(), SearchRequest{Workload: "package_delivery"},
		WithSearchRunner(broken))
	if err == nil || !strings.Contains(err.Error(), "engine exploded") {
		t.Errorf("erroring runs not surfaced: %v", err)
	}

	short := func(context.Context, []Spec) ([]Result, error) { return nil, nil }
	_, err = SearchFrontier(context.Background(), SearchRequest{Workload: "package_delivery"},
		WithSearchRunner(short))
	if err == nil {
		t.Error("short result batch not rejected")
	}
}

// TestSearchFrontierSimulatedDeterminism runs a real (tiny) search twice on
// the simulation engine and requires byte-identical frontiers — the same
// contract the nightly scenario-search workflow pins at a larger budget.
func TestSearchFrontierSimulatedDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	req := SearchRequest{
		Workload:    "package_delivery",
		Cores:       2,
		FreqGHz:     0.8,
		Seed:        7,
		Objective:   SearchQoF,
		Generations: 1,
		Population:  3,
		Repeats:     1,
	}
	run := func() []byte {
		f, err := SearchFrontier(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(f)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := run(), run()
	if string(a) != string(b) {
		t.Fatalf("simulated search not deterministic:\n%s\n%s", a, b)
	}
}
