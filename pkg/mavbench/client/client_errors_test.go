package client_test

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"mavbench/internal/core"
	"mavbench/internal/des"
	"mavbench/internal/env"
	"mavbench/internal/geom"
	"mavbench/internal/sim"
	"mavbench/pkg/mavbench"
	"mavbench/pkg/mavbench/client"
	"mavbench/pkg/mavbench/server"
)

// gatedWorkload blocks every run until its gate closes — for holding a
// campaign active while quota behavior is probed.
type gatedWorkload struct {
	name string
	gate chan struct{}
}

func (w *gatedWorkload) Name() string        { return w.name }
func (w *gatedWorkload) Description() string { return "gated workload for client tests" }
func (w *gatedWorkload) World(p core.Params) (*env.World, geom.Vec3, error) {
	<-w.gate
	return env.BoundedEmptyWorld(40, 20, p.Seed), geom.V3(0, 0, 0), nil
}
func (w *gatedWorkload) Setup(s *sim.Simulator, p core.Params) error {
	s.Engine().Schedule(des.Seconds(1), "client/finish", func(*des.Engine) {
		s.CompleteMission(true, "")
	})
	return nil
}

func startTenantedService(t *testing.T, tenants []server.TenantConfig) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(server.New(server.Config{Workers: 1, Tenants: tenants}).Handler())
	t.Cleanup(ts.Close)
	return ts
}

// TestClientAuthErrors pins the 403 contract end to end: a keyless or
// wrong-keyed client gets a typed *APIError with the machine-readable code,
// and the right key flows through to an ack that names the tenant.
func TestClientAuthErrors(t *testing.T) {
	core.Register(&clientWorkload{name: "client_auth"})
	ts := startTenantedService(t, []server.TenantConfig{
		{Name: "acme", APIKey: "key-acme", MaxPriority: 4},
	})
	specs := []mavbench.Spec{{Workload: "client_auth", Seed: 1, MaxMissionTimeS: 30}}

	var apiErr *client.APIError
	_, err := client.New(ts.URL).Submit(context.Background(), specs)
	if !errors.As(err, &apiErr) {
		t.Fatalf("keyless submit err = %v (%T), want *client.APIError", err, err)
	}
	if apiErr.Status != http.StatusForbidden || apiErr.Code != "missing_api_key" {
		t.Errorf("keyless error = %+v, want 403 missing_api_key", apiErr)
	}
	if apiErr.Temporary() {
		t.Error("auth failure reported as temporary")
	}

	wrong := client.New(ts.URL)
	wrong.APIKey = "key-wrong"
	if _, err := wrong.Submit(context.Background(), specs); !errors.As(err, &apiErr) ||
		apiErr.Status != http.StatusForbidden || apiErr.Code != "unknown_api_key" {
		t.Errorf("wrong-key error = %v, want 403 unknown_api_key", err)
	}

	good := client.New(ts.URL)
	good.APIKey = "key-acme"
	good.Priority = 9 // above the tenant ceiling: the server clamps it
	ack, err := good.Submit(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	if ack.Tenant != "acme" || ack.Priority != 4 {
		t.Errorf("ack = %+v, want tenant acme at clamped priority 4", ack)
	}
}

// TestClientQuotaExceeded holds a campaign active against a one-campaign
// quota and asserts the second submission surfaces 429 quota_exceeded.
func TestClientQuotaExceeded(t *testing.T) {
	gated := &gatedWorkload{name: "client_quota", gate: make(chan struct{})}
	core.Register(gated)
	t.Cleanup(func() { close(gated.gate) })
	ts := startTenantedService(t, []server.TenantConfig{
		{Name: "small", APIKey: "key-small", MaxActiveCampaigns: 1},
	})
	cl := client.New(ts.URL)
	cl.APIKey = "key-small"

	if _, err := cl.Submit(context.Background(), []mavbench.Spec{
		{Workload: "client_quota", Seed: 1, MaxMissionTimeS: 30},
	}); err != nil {
		t.Fatal(err)
	}
	var apiErr *client.APIError
	_, err := cl.Submit(context.Background(), []mavbench.Spec{
		{Workload: "client_quota", Seed: 2, MaxMissionTimeS: 30},
	})
	if !errors.As(err, &apiErr) {
		t.Fatalf("over-quota err = %v (%T)", err, err)
	}
	if apiErr.Status != http.StatusTooManyRequests || apiErr.Code != "quota_exceeded" {
		t.Errorf("over-quota error = %+v, want 429 quota_exceeded", apiErr)
	}
	if !apiErr.Temporary() {
		t.Error("quota rejection not reported as temporary")
	}
}

// TestClientRateLimited pins retry-after plumbing: the typed body field and
// the Retry-After header both surface as APIError.RetryAfter.
func TestClientRateLimited(t *testing.T) {
	core.Register(&clientWorkload{name: "client_rate"})
	ts := startTenantedService(t, []server.TenantConfig{
		{Name: "slow", APIKey: "key-slow", RatePerSec: 0.01, Burst: 1},
	})
	cl := client.New(ts.URL)
	cl.APIKey = "key-slow"
	specs := []mavbench.Spec{{Workload: "client_rate", Seed: 1, MaxMissionTimeS: 30}}

	if _, err := cl.Submit(context.Background(), specs); err != nil {
		t.Fatal(err)
	}
	var apiErr *client.APIError
	if _, err := cl.Submit(context.Background(), specs); !errors.As(err, &apiErr) {
		t.Fatalf("over-rate err = %v", err)
	}
	if apiErr.Code != "rate_limited" || apiErr.Status != http.StatusTooManyRequests {
		t.Errorf("rate error = %+v, want 429 rate_limited", apiErr)
	}
	if apiErr.RetryAfter <= 0 {
		t.Errorf("RetryAfter = %v, want > 0", apiErr.RetryAfter)
	}
}

// TestClientRetryAfterHeaderFallback: a plain 429 with only a Retry-After
// header (no typed body) still yields a populated RetryAfter.
func TestClientRetryAfterHeaderFallback(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "7")
		http.Error(w, "slow down", http.StatusTooManyRequests)
	}))
	t.Cleanup(ts.Close)

	_, err := client.New(ts.URL).Submit(context.Background(), []mavbench.Spec{{Workload: "x"}})
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("err = %v", err)
	}
	if apiErr.RetryAfter != 7*time.Second {
		t.Errorf("RetryAfter = %v, want 7s", apiErr.RetryAfter)
	}
	if apiErr.Message != "slow down" {
		t.Errorf("non-JSON body message = %q", apiErr.Message)
	}
}

// TestClientTruncatedNDJSONStream: a result stream sheared mid-line must
// surface a decode error, never a silently short result set.
func TestClientTruncatedNDJSONStream(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		_, _ = w.Write([]byte(`{"index":0,"spec":{"workload":"x"}}` + "\n"))
		_, _ = w.Write([]byte(`{"index":1,"spe`)) // sheared mid-line
	}))
	t.Cleanup(ts.Close)

	var seen int
	err := client.New(ts.URL).Results(context.Background(), "c0", func(mavbench.Result) error {
		seen++
		return nil
	})
	if err == nil {
		t.Fatal("truncated stream decoded without error")
	}
	if seen != 1 {
		t.Errorf("delivered %d results before the shear, want 1", seen)
	}
}
