package client_test

import (
	"context"
	"errors"
	"net/http/httptest"
	"strings"
	"testing"

	"mavbench/internal/core"
	"mavbench/internal/des"
	"mavbench/internal/env"
	"mavbench/internal/geom"
	"mavbench/internal/sim"
	"mavbench/pkg/mavbench"
	"mavbench/pkg/mavbench/client"
	"mavbench/pkg/mavbench/server"
)

// clientWorkload is a one-simulated-second workload for client tests.
type clientWorkload struct{ name string }

func (w *clientWorkload) Name() string        { return w.name }
func (w *clientWorkload) Description() string { return "fake workload for client tests" }
func (w *clientWorkload) World(p core.Params) (*env.World, geom.Vec3, error) {
	return env.BoundedEmptyWorld(40, 20, p.Seed), geom.V3(0, 0, 0), nil
}
func (w *clientWorkload) Setup(s *sim.Simulator, p core.Params) error {
	s.Engine().Schedule(des.Seconds(1), "client/finish", func(*des.Engine) {
		s.CompleteMission(true, "")
	})
	return nil
}

func startService(t *testing.T) *client.Client {
	t.Helper()
	ts := httptest.NewServer(server.New(server.Config{Workers: 2}).Handler())
	t.Cleanup(ts.Close)
	return client.New(ts.URL)
}

func TestClientRunCollectsInSubmissionOrder(t *testing.T) {
	core.Register(&clientWorkload{name: "client_run"})
	cl := startService(t)
	specs := []mavbench.Spec{
		{Workload: "client_run", Seed: 3, MaxMissionTimeS: 30},
		{Workload: "client_run", Seed: 1, MaxMissionTimeS: 30},
		{Workload: "client_run", Seed: 2, MaxMissionTimeS: 30},
	}
	results, err := cl.Run(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d results", len(results))
	}
	for i, res := range results {
		if res.Index != i {
			t.Errorf("result %d has index %d (submission order broken)", i, res.Index)
		}
		if res.Spec.Seed != specs[i].Seed {
			t.Errorf("result %d is for seed %d, want %d", i, res.Spec.Seed, specs[i].Seed)
		}
		if !res.OK() {
			t.Errorf("result %d failed: %v", i, res.Err())
		}
		if res.SpecHash != specs[i].Hash() {
			t.Errorf("result %d content address mismatch", i)
		}
	}
}

func TestClientRunStreamDeliversEveryResult(t *testing.T) {
	core.Register(&clientWorkload{name: "client_stream"})
	cl := startService(t)
	specs := []mavbench.Spec{
		{Workload: "client_stream", Seed: 1, MaxMissionTimeS: 30},
		{Workload: "client_stream", Seed: 2, MaxMissionTimeS: 30},
	}
	seen := map[int]bool{}
	err := cl.RunStream(context.Background(), specs, func(res mavbench.Result) error {
		seen[res.Index] = res.OK()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 2 || !seen[0] || !seen[1] {
		t.Fatalf("streamed results = %v", seen)
	}
}

func TestClientSurfacesAPIErrors(t *testing.T) {
	cl := startService(t)
	_, err := cl.Run(context.Background(), []mavbench.Spec{{Workload: "no_such_workload_anywhere"}})
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("err = %v (%T), want *client.APIError", err, err)
	}
	if apiErr.Status != 400 {
		t.Errorf("status = %d, want 400", apiErr.Status)
	}
	if !strings.Contains(apiErr.Message, "no_such_workload_anywhere") {
		t.Errorf("message %q does not name the bad workload", apiErr.Message)
	}

	if err := cl.Results(context.Background(), "c000000000000000", func(mavbench.Result) error { return nil }); err == nil {
		t.Error("streaming an unknown campaign id did not error")
	} else if !errors.As(err, &apiErr) || apiErr.Status != 404 {
		t.Errorf("unknown campaign error = %v", err)
	}
}

func TestClientRunBatch(t *testing.T) {
	core.Register(&clientWorkload{name: "client_batch"})
	cl := startService(t)
	var got []mavbench.Result
	err := cl.RunBatch(context.Background(), []mavbench.Spec{
		{Workload: "client_batch", Seed: 9, MaxMissionTimeS: 30},
	}, func(res mavbench.Result) error {
		got = append(got, res)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || !got[0].OK() {
		t.Fatalf("batch results = %+v", got)
	}
}
