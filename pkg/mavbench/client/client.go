// Package client is a Go client for the mavbenchd /v1 HTTP API: submit
// campaigns, stream NDJSON results, and run batches against a single server
// or a fleet coordinator — the programmatic form of `mavbench-sweep -remote`.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"mavbench/pkg/mavbench"
	"mavbench/pkg/mavbench/distrib"
)

// Client talks to one mavbenchd server (standalone or fleet coordinator).
type Client struct {
	// BaseURL is the server root, e.g. "http://localhost:8080".
	BaseURL string
	// HTTPClient issues the requests (default http.DefaultClient; do not set
	// a client-level timeout — result streams last as long as campaigns).
	HTTPClient *http.Client
}

// New returns a client for the server at baseURL.
func New(baseURL string) *Client {
	return &Client{BaseURL: strings.TrimRight(baseURL, "/")}
}

func (c *Client) client() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// APIError is a non-2xx response from the service, carrying the status code
// and the {"error": ...} message.
type APIError struct {
	Status  int
	Message string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("mavbenchd returned %d: %s", e.Status, e.Message)
}

// Ack acknowledges a campaign submission.
type Ack struct {
	ID         string   `json:"id"`
	Count      int      `json:"count"`
	SpecHashes []string `json:"spec_hashes"`
	ResultsURL string   `json:"results_url"`
}

// Submit posts a campaign and returns its acknowledgement. Results are
// collected separately with Results (the campaign executes server-side
// regardless of whether anyone is streaming).
func (c *Client) Submit(ctx context.Context, specs []mavbench.Spec) (Ack, error) {
	var ack Ack
	if err := c.postJSON(ctx, "/v1/campaigns", map[string]any{"specs": specs}, &ack); err != nil {
		return Ack{}, err
	}
	return ack, nil
}

// Results streams a campaign's results, invoking fn for each one as it
// arrives (completion order). It returns when the campaign is done, fn
// returns an error, or the context ends.
func (c *Client) Results(ctx context.Context, id string, fn func(mavbench.Result) error) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/campaigns/"+id+"/results", nil)
	if err != nil {
		return err
	}
	resp, err := c.client().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return decodeAPIError(resp)
	}
	return decodeNDJSON(resp.Body, fn)
}

// RunStream submits specs and streams each result to fn the moment it
// completes — the remote mirror of Campaign.Stream.
func (c *Client) RunStream(ctx context.Context, specs []mavbench.Spec, fn func(mavbench.Result) error) error {
	ack, err := c.Submit(ctx, specs)
	if err != nil {
		return err
	}
	return c.Results(ctx, ack.ID, fn)
}

// Run submits specs, blocks until every result has arrived, and returns them
// in submission order — the remote mirror of Campaign.Collect. Like Collect,
// per-spec failures do not error the call; inspect each Result.
func (c *Client) Run(ctx context.Context, specs []mavbench.Spec) ([]mavbench.Result, error) {
	ack, err := c.Submit(ctx, specs)
	if err != nil {
		return nil, err
	}
	var results []mavbench.Result
	if err := c.Results(ctx, ack.ID, func(res mavbench.Result) error {
		results = append(results, res)
		return nil
	}); err != nil {
		return results, err
	}
	if len(results) != ack.Count {
		return results, fmt.Errorf("campaign %s delivered %d of %d results", ack.ID, len(results), ack.Count)
	}
	distrib.SortByIndex(results)
	return results, nil
}

// RunBatch executes specs on the server's synchronous batch endpoint
// (POST /v1/run — local execution even on a coordinator), streaming each
// result to fn. Canceling the context cancels the remote batch.
func (c *Client) RunBatch(ctx context.Context, specs []mavbench.Spec, fn func(mavbench.Result) error) error {
	body, err := json.Marshal(distrib.RunRequest{Specs: specs})
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/v1/run", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.client().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return decodeAPIError(resp)
	}
	return decodeNDJSON(resp.Body, fn)
}

// Workers returns the coordinator's fleet listing: per-worker status plus
// the healthy count.
func (c *Client) Workers(ctx context.Context) (workers []distrib.WorkerStatus, healthy int, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/workers", nil)
	if err != nil {
		return nil, 0, err
	}
	resp, err := c.client().Do(req)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, 0, decodeAPIError(resp)
	}
	var body distrib.WorkerListResponse
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return nil, 0, err
	}
	return body.Workers, body.Healthy, nil
}

// Scenarios returns the server's difficulty-graded scenario catalog.
func (c *Client) Scenarios(ctx context.Context) ([]mavbench.ScenarioInfo, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/scenarios", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.client().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeAPIError(resp)
	}
	var body struct {
		Scenarios []mavbench.ScenarioInfo `json:"scenarios"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return nil, err
	}
	return body.Scenarios, nil
}

func (c *Client) postJSON(ctx context.Context, path string, body, out any) error {
	buf, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+path, bytes.NewReader(buf))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.client().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		return decodeAPIError(resp)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// decodeNDJSON reads newline-delimited Results, tolerating lines of any
// length (keep-traces results can be large).
func decodeNDJSON(r io.Reader, fn func(mavbench.Result) error) error {
	br := bufio.NewReader(r)
	for {
		line, err := br.ReadBytes('\n')
		if len(bytes.TrimSpace(line)) > 0 {
			var res mavbench.Result
			if uerr := json.Unmarshal(line, &res); uerr != nil {
				return fmt.Errorf("bad result line: %w", uerr)
			}
			if ferr := fn(res); ferr != nil {
				return ferr
			}
		}
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
	}
}

func decodeAPIError(resp *http.Response) error {
	return &APIError{Status: resp.StatusCode, Message: distrib.DecodeErrorBody(resp.Body)}
}
