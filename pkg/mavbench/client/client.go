// Package client is a Go client for the mavbenchd /v1 HTTP API: submit
// campaigns, stream NDJSON results, and run batches against a single server
// or a fleet coordinator — the programmatic form of `mavbench-sweep -remote`,
// and the path by which the paper-scale sweeps (MAVBench, Boroujerdian et
// al., MICRO 2018, Figures 10-15) are farmed out to a fleet.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"mavbench/pkg/mavbench"
	"mavbench/pkg/mavbench/distrib"
)

// Client talks to one mavbenchd server (standalone or fleet coordinator).
type Client struct {
	// BaseURL is the server root, e.g. "http://localhost:8080".
	BaseURL string
	// HTTPClient issues the requests (default http.DefaultClient; do not set
	// a client-level timeout — result streams last as long as campaigns).
	HTTPClient *http.Client
	// APIKey authenticates against a multi-tenant server (sent as X-API-Key
	// on every request; empty = unauthenticated single-tenant mode).
	APIKey string
	// Priority is the default campaign priority for Submit/Run/RunStream
	// (0-8; the server clamps it to the tenant's ceiling).
	Priority int
}

// New returns a client for the server at baseURL.
func New(baseURL string) *Client {
	return &Client{BaseURL: strings.TrimRight(baseURL, "/")}
}

func (c *Client) client() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// do issues a request with the client's credentials attached.
func (c *Client) do(req *http.Request) (*http.Response, error) {
	if c.APIKey != "" {
		req.Header.Set("X-API-Key", c.APIKey)
	}
	return c.client().Do(req)
}

// APIError is a non-2xx response from the service, carrying the status code,
// the {"error": ...} message, and — for typed admission rejections — the
// machine-readable code plus the advised retry delay.
type APIError struct {
	Status  int
	Message string
	// Code is the machine-readable rejection class when the server sent one:
	// "missing_api_key", "unknown_api_key", "quota_exceeded", "rate_limited".
	Code string
	// RetryAfter is the server-advised wait before retrying (rate limits),
	// zero when the server gave none.
	RetryAfter time.Duration
}

// Error formats the server's status, message and machine-readable code.
func (e *APIError) Error() string {
	msg := fmt.Sprintf("mavbenchd returned %d: %s", e.Status, e.Message)
	if e.Code != "" {
		msg += " (" + e.Code + ")"
	}
	return msg
}

// Temporary reports whether retrying later could succeed (429s are
// temporary; auth failures are not).
func (e *APIError) Temporary() bool { return e.Status == http.StatusTooManyRequests }

// Ack acknowledges a campaign submission.
type Ack struct {
	ID         string   `json:"id"`
	Count      int      `json:"count"`
	SpecHashes []string `json:"spec_hashes"`
	ResultsURL string   `json:"results_url"`
	// Tenant echoes the tenant the server resolved from the API key.
	Tenant string `json:"tenant,omitempty"`
	// Priority echoes the effective (possibly clamped) campaign priority.
	Priority int `json:"priority,omitempty"`
}

// Submit posts a campaign at the client's default Priority and returns its
// acknowledgement. Results are collected separately with Results (the
// campaign executes server-side regardless of whether anyone is streaming).
func (c *Client) Submit(ctx context.Context, specs []mavbench.Spec) (Ack, error) {
	return c.SubmitPriority(ctx, specs, c.Priority)
}

// SubmitPriority posts a campaign at an explicit priority (overriding the
// client default for this one submission).
func (c *Client) SubmitPriority(ctx context.Context, specs []mavbench.Spec, priority int) (Ack, error) {
	body := map[string]any{"specs": specs}
	if priority != 0 {
		body["priority"] = priority
	}
	var ack Ack
	if err := c.postJSON(ctx, "/v1/campaigns", body, &ack); err != nil {
		return Ack{}, err
	}
	return ack, nil
}

// Results streams a campaign's results, invoking fn for each one as it
// arrives (completion order). It returns when the campaign is done, fn
// returns an error, or the context ends.
func (c *Client) Results(ctx context.Context, id string, fn func(mavbench.Result) error) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/campaigns/"+id+"/results", nil)
	if err != nil {
		return err
	}
	resp, err := c.do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return decodeAPIError(resp)
	}
	return decodeNDJSON(resp.Body, fn)
}

// RunStream submits specs and streams each result to fn the moment it
// completes — the remote mirror of Campaign.Stream.
func (c *Client) RunStream(ctx context.Context, specs []mavbench.Spec, fn func(mavbench.Result) error) error {
	ack, err := c.Submit(ctx, specs)
	if err != nil {
		return err
	}
	return c.Results(ctx, ack.ID, fn)
}

// Run submits specs, blocks until every result has arrived, and returns them
// in submission order — the remote mirror of Campaign.Collect. Like Collect,
// per-spec failures do not error the call; inspect each Result.
func (c *Client) Run(ctx context.Context, specs []mavbench.Spec) ([]mavbench.Result, error) {
	ack, err := c.Submit(ctx, specs)
	if err != nil {
		return nil, err
	}
	var results []mavbench.Result
	if err := c.Results(ctx, ack.ID, func(res mavbench.Result) error {
		results = append(results, res)
		return nil
	}); err != nil {
		return results, err
	}
	if len(results) != ack.Count {
		return results, fmt.Errorf("campaign %s delivered %d of %d results", ack.ID, len(results), ack.Count)
	}
	distrib.SortByIndex(results)
	return results, nil
}

// RunBatch executes specs on the server's synchronous batch endpoint
// (POST /v1/run — local execution even on a coordinator), streaming each
// result to fn. Canceling the context cancels the remote batch.
func (c *Client) RunBatch(ctx context.Context, specs []mavbench.Spec, fn func(mavbench.Result) error) error {
	body, err := json.Marshal(distrib.RunRequest{Specs: specs})
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/v1/run", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return decodeAPIError(resp)
	}
	return decodeNDJSON(resp.Body, fn)
}

// Workers returns the coordinator's fleet listing: per-worker status plus
// the healthy count.
func (c *Client) Workers(ctx context.Context) (workers []distrib.WorkerStatus, healthy int, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/workers", nil)
	if err != nil {
		return nil, 0, err
	}
	resp, err := c.do(req)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, 0, decodeAPIError(resp)
	}
	var body distrib.WorkerListResponse
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return nil, 0, err
	}
	return body.Workers, body.Healthy, nil
}

// Scenarios returns the server's difficulty-graded scenario catalog.
func (c *Client) Scenarios(ctx context.Context) ([]mavbench.ScenarioInfo, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/scenarios", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeAPIError(resp)
	}
	var body struct {
		Scenarios []mavbench.ScenarioInfo `json:"scenarios"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return nil, err
	}
	return body.Scenarios, nil
}

func (c *Client) postJSON(ctx context.Context, path string, body, out any) error {
	buf, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+path, bytes.NewReader(buf))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		return decodeAPIError(resp)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// decodeNDJSON reads newline-delimited Results, tolerating lines of any
// length (keep-traces results can be large).
func decodeNDJSON(r io.Reader, fn func(mavbench.Result) error) error {
	br := bufio.NewReader(r)
	for {
		line, err := br.ReadBytes('\n')
		if len(bytes.TrimSpace(line)) > 0 {
			var res mavbench.Result
			if uerr := json.Unmarshal(line, &res); uerr != nil {
				return fmt.Errorf("bad result line: %w", uerr)
			}
			if ferr := fn(res); ferr != nil {
				return ferr
			}
		}
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
	}
}

// decodeAPIError turns a non-2xx response into an *APIError, lifting the
// typed admission fields ({"code": ..., "retry_after_s": ...}) and the
// Retry-After header when the server sent them.
func decodeAPIError(resp *http.Response) error {
	buf, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	apiErr := &APIError{Status: resp.StatusCode}
	var e struct {
		Error       string  `json:"error"`
		Code        string  `json:"code"`
		RetryAfterS float64 `json:"retry_after_s"`
	}
	if json.Unmarshal(buf, &e) == nil && e.Error != "" {
		apiErr.Message = e.Error
		apiErr.Code = e.Code
		if e.RetryAfterS > 0 {
			apiErr.RetryAfter = time.Duration(e.RetryAfterS * float64(time.Second))
		}
	} else {
		apiErr.Message = string(bytes.TrimSpace(buf))
	}
	if apiErr.RetryAfter == 0 {
		if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
			apiErr.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	return apiErr
}
