package client

import (
	"context"
	"encoding/json"
	"net/http"
	"net/url"
	"strconv"
	"strings"

	"mavbench/pkg/mavbench"
)

// ResultsQuery selects stored results on the server's query endpoint
// (GET /v1/results; requires the segment store backend — see docs/STORE.md).
// Zero-valued fields match everything.
type ResultsQuery struct {
	// Workload and Scenario filter on exact canonical names.
	Workload string
	Scenario string
	// The *Min/*Max pairs bound the difficulty and compute axes; nil leaves
	// that side open.
	DifficultyMin, DifficultyMax *float64
	CoresMin, CoresMax           *int
	FreqMin, FreqMax             *float64
	// OnlyOK drops failed runs.
	OnlyOK bool
	// Limit caps the result count (0 = server default, 10000).
	Limit int
	// Metrics, when non-empty, asks the server to project each result to a
	// flat row of spec axes plus these Report fields (Go field names, e.g.
	// "MissionTimeS", "TotalEnergyKJ") instead of returning full results.
	Metrics []string
}

// values encodes the query as URL parameters.
func (q ResultsQuery) values() url.Values {
	vals := url.Values{}
	set := func(key, val string) {
		if val != "" {
			vals.Set(key, val)
		}
	}
	set("workload", q.Workload)
	set("scenario", q.Scenario)
	ff := func(f *float64) string {
		if f == nil {
			return ""
		}
		return strconv.FormatFloat(*f, 'g', -1, 64)
	}
	fi := func(i *int) string {
		if i == nil {
			return ""
		}
		return strconv.Itoa(*i)
	}
	set("difficulty_min", ff(q.DifficultyMin))
	set("difficulty_max", ff(q.DifficultyMax))
	set("cores_min", fi(q.CoresMin))
	set("cores_max", fi(q.CoresMax))
	set("freq_min", ff(q.FreqMin))
	set("freq_max", ff(q.FreqMax))
	if q.OnlyOK {
		vals.Set("ok", "true")
	}
	if q.Limit > 0 {
		vals.Set("limit", strconv.Itoa(q.Limit))
	}
	if len(q.Metrics) > 0 {
		vals.Set("metrics", strings.Join(q.Metrics, ","))
	}
	return vals
}

// QueryResponse is the GET /v1/results body. Results is populated for plain
// queries; Rows for metric-projected queries (one flat map per result).
type QueryResponse struct {
	Count   int               `json:"count"`
	Metrics []string          `json:"metrics,omitempty"`
	Results []mavbench.Result `json:"-"`
	Rows    []map[string]any  `json:"-"`
}

// QueryResults runs a filtered query against the server's result store.
// A server whose store is not queryable answers 501, surfaced as *APIError.
func (c *Client) QueryResults(ctx context.Context, q ResultsQuery) (QueryResponse, error) {
	target := c.BaseURL + "/v1/results"
	if enc := q.values().Encode(); enc != "" {
		target += "?" + enc
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, target, nil)
	if err != nil {
		return QueryResponse{}, err
	}
	resp, err := c.do(req)
	if err != nil {
		return QueryResponse{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return QueryResponse{}, decodeAPIError(resp)
	}
	var out QueryResponse
	if len(q.Metrics) > 0 {
		var body struct {
			Count   int              `json:"count"`
			Metrics []string         `json:"metrics"`
			Results []map[string]any `json:"results"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			return QueryResponse{}, err
		}
		out.Count, out.Metrics, out.Rows = body.Count, body.Metrics, body.Results
		return out, nil
	}
	var body struct {
		Count   int               `json:"count"`
		Results []mavbench.Result `json:"results"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return QueryResponse{}, err
	}
	out.Count, out.Results = body.Count, body.Results
	return out, nil
}
