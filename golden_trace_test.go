// Golden-trace regression harness: every workload (plus kernel variants that
// exercise the octomap and planner hot paths) is pinned to exact mission
// metrics at a fixed seed. The simulator is deterministic, so these values
// must match bit-for-bit on every platform and at every worker count; a kernel
// "optimisation" that changes any simulated outcome — voxel classification,
// planner path, collision count — fails this test loudly instead of silently
// shifting the paper's reproduction numbers.
//
// Regenerate (only when an intentional behaviour change is being made) with:
//
//	go test -run TestGoldenTraces -update .
package mavbench_test

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"mavbench/pkg/mavbench"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata golden files instead of comparing")

const goldenPath = "testdata/golden_traces.json"

// goldenTrace pins the mission metrics of one spec. Floats are compared
// exactly: the engine is deterministic and Go's JSON encoder round-trips
// float64 losslessly.
type goldenTrace struct {
	Name     string        `json:"name"`
	Spec     mavbench.Spec `json:"spec"`
	SpecHash string        `json:"spec_hash"`

	MissionTimeS    float64 `json:"mission_time_s"`
	FlightTimeS     float64 `json:"flight_time_s"`
	DistanceM       float64 `json:"distance_m"`
	AverageSpeedMPS float64 `json:"average_speed_mps"`
	TotalEnergyKJ   float64 `json:"total_energy_kj"`
	RotorEnergyKJ   float64 `json:"rotor_energy_kj"`
	ComputeEnergyKJ float64 `json:"compute_energy_kj"`
	Collisions      float64 `json:"collisions"`
	Replans         float64 `json:"replans"`
	Success         bool    `json:"success"`
	FailureReason   string  `json:"failure_reason,omitempty"`
}

// goldenSpecs builds the pinned spec set: the five workloads at the default
// operating point, plus variants that stress each rewritten kernel (all three
// planners, static coarse and dynamic octomap resolution, the weakest and
// strongest operating points, depth noise and SLAM localization).
func goldenSpecs(t testing.TB) []struct {
	name string
	spec mavbench.Spec
} {
	t.Helper()
	mk := func(name, workload string, opts ...mavbench.Option) struct {
		name string
		spec mavbench.Spec
	} {
		base := []mavbench.Option{
			mavbench.WithSeed(1234),
			mavbench.WithWorldScale(0.35),
			mavbench.WithMaxMissionTime(420),
		}
		spec, err := mavbench.NewSpec(workload, append(base, opts...)...)
		if err != nil {
			t.Fatalf("building golden spec %s: %v", name, err)
		}
		return struct {
			name string
			spec mavbench.Spec
		}{name, spec}
	}
	return []struct {
		name string
		spec mavbench.Spec
	}{
		mk("scanning/default", "scanning"),
		mk("package_delivery/default", "package_delivery"),
		mk("mapping_3d/default", "mapping_3d"),
		mk("search_and_rescue/default", "search_and_rescue"),
		mk("aerial_photography/default", "aerial_photography"),

		mk("package_delivery/planner=rrt", "package_delivery", mavbench.WithPlanner("rrt")),
		mk("package_delivery/planner=prm", "package_delivery", mavbench.WithPlanner("prm")),
		mk("package_delivery/resolution=0.80", "package_delivery", mavbench.WithOctomapResolution(0.80)),
		mk("package_delivery/depth_noise=0.5", "package_delivery", mavbench.WithDepthNoise(0.5)),
		mk("mapping_3d/dynamic_resolution", "mapping_3d", mavbench.WithDynamicResolution(0.15, 0.80)),
		mk("mapping_3d/localizer=orb_slam2", "mapping_3d", mavbench.WithLocalizer("orb_slam2")),
		mk("scanning/point=2x0.8", "scanning", mavbench.WithOperatingPoint(2, 0.8)),
		mk("search_and_rescue/point=4x2.2", "search_and_rescue", mavbench.WithOperatingPoint(4, 2.2)),

		// Cloud offload routes planning kernels over the network, pricing the
		// serialized map by Map.MemoryBytes — the one path whose simulated
		// results legitimately changed when MemoryBytes switched to the
		// chunked layout's real footprint. Pinned so it can never drift
		// silently again.
		mk("package_delivery/cloud_offload=lan", "package_delivery", mavbench.WithCloudOffload(mavbench.LAN1Gbps())),

		// Scenario subsystem: graded presets, continuous difficulty, knob
		// overrides and cross-matrix worlds (a workload over another
		// family's scenario, with target injection) are each pinned so
		// distributed and cached runs stay bit-identical per
		// (scenario, seed).
		mk("package_delivery/scenario=urban-sparse", "package_delivery", mavbench.WithScenario("urban-sparse")),
		mk("package_delivery/scenario=urban-dense", "package_delivery", mavbench.WithScenario("urban-dense")),
		mk("package_delivery/difficulty=0.5", "package_delivery", mavbench.WithDifficulty(0.5)),
		mk("package_delivery/knobs=dynamic_speed2x", "package_delivery",
			mavbench.WithScenarioKnobs(mavbench.ScenarioKnobs{DynamicSpeed: 2})),
		mk("scanning/scenario=farm-dense", "scanning", mavbench.WithScenario("farm-dense")),
		mk("mapping_3d/scenario=disaster-dense", "mapping_3d", mavbench.WithScenario("disaster-dense")),
		mk("search_and_rescue/scenario=urban-default", "search_and_rescue", mavbench.WithScenario("urban-default")),
		mk("aerial_photography/scenario=park-dense", "aerial_photography", mavbench.WithScenario("park-dense")),

		// Frontier presets discovered by the adversarial scenario search:
		// their pinned knob vectors are catalog data, so any drift in knob
		// resolution or world generation for these entries shows up here as
		// a trace diff rather than silently changing what the presets mean.
		mk("package_delivery/scenario=urban-frontier-weak", "package_delivery",
			mavbench.WithScenario("urban-frontier-weak")),
		mk("package_delivery/scenario=urban-frontier-strong", "package_delivery",
			mavbench.WithScenario("urban-frontier-strong")),
	}
}

func traceFromResult(name string, res mavbench.Result) goldenTrace {
	return goldenTrace{
		Name:            name,
		Spec:            res.Spec,
		SpecHash:        res.SpecHash,
		MissionTimeS:    res.Report.MissionTimeS,
		FlightTimeS:     res.Report.FlightTimeS,
		DistanceM:       res.Report.DistanceM,
		AverageSpeedMPS: res.Report.AverageSpeed,
		TotalEnergyKJ:   res.Report.TotalEnergyKJ,
		RotorEnergyKJ:   res.Report.RotorEnergyKJ,
		ComputeEnergyKJ: res.Report.ComputeEnergyKJ,
		Collisions:      res.Report.Counters["collisions"],
		Replans:         res.Report.Counters["replans"],
		Success:         res.Report.Success,
		FailureReason:   res.Report.FailureReason,
	}
}

// runGoldenCampaign executes the golden spec set on a campaign with the given
// worker count and returns one trace per spec, in spec order.
func runGoldenCampaign(t testing.TB, workers int) []goldenTrace {
	t.Helper()
	entries := goldenSpecs(t)
	specs := make([]mavbench.Spec, len(entries))
	for i, e := range entries {
		specs[i] = e.spec
	}
	results, err := mavbench.NewCampaign(specs...).SetWorkers(workers).Collect(nil)
	if err != nil {
		t.Fatalf("golden campaign failed: %v", err)
	}
	traces := make([]goldenTrace, len(results))
	for i, res := range results {
		traces[i] = traceFromResult(entries[i].name, res)
	}
	return traces
}

func TestGoldenTraces(t *testing.T) {
	got := runGoldenCampaign(t, 1)

	if *updateGolden {
		buf, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s with %d traces", goldenPath, len(got))
		return
	}

	buf, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading golden file (regenerate with -update): %v", err)
	}
	var want []goldenTrace
	if err := json.Unmarshal(buf, &want); err != nil {
		t.Fatalf("parsing %s: %v", goldenPath, err)
	}
	if len(want) != len(got) {
		t.Fatalf("golden file has %d traces, harness produced %d (regenerate with -update)", len(want), len(got))
	}
	for i := range got {
		if g, w := traceJSON(t, got[i]), traceJSON(t, want[i]); g != w {
			t.Errorf("trace %q diverged from golden:\n got: %s\nwant: %s", got[i].Name, g, w)
		}
	}
}

// traceJSON canonicalizes a trace for comparison. (Spec holds a *CloudLink,
// so direct struct equality would compare pointer addresses.)
func traceJSON(t testing.TB, tr goldenTrace) string {
	t.Helper()
	buf, err := json.Marshal(tr)
	if err != nil {
		t.Fatal(err)
	}
	return string(buf)
}

// TestGoldenTracesWorkerInvariance re-runs the golden campaign with one
// worker per CPU and requires results identical to the sequential run: the
// kernel hot paths must not leak any scheduling or shared-state dependence
// into mission outcomes at any pool size.
func TestGoldenTracesWorkerInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	sequential := runGoldenCampaign(t, 1)
	parallel := runGoldenCampaign(t, runtime.GOMAXPROCS(0))
	for i := range sequential {
		if s, p := traceJSON(t, sequential[i]), traceJSON(t, parallel[i]); s != p {
			t.Errorf("trace %q differs across worker counts:\n  workers=1: %s\n  workers=N: %s",
				sequential[i].Name, s, p)
		}
	}
}

// TestGoldenTracesWorkerOversubscription runs the golden campaign on a pool
// far wider than any expected machine (32 workers) and requires traces
// bit-identical to the sequential run. Heavy oversubscription maximises
// goroutine interleaving over the shared object pools (octomap chunks, camera
// pixel buffers, point-cloud scratch), so a pooled object leaking state
// between concurrent runs surfaces here as a trace diff — CI additionally
// runs this test under the race detector.
func TestGoldenTracesWorkerOversubscription(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	sequential := runGoldenCampaign(t, 1)
	wide := runGoldenCampaign(t, 32)
	for i := range sequential {
		if s, p := traceJSON(t, sequential[i]), traceJSON(t, wide[i]); s != p {
			t.Errorf("trace %q differs at workers=32:\n  workers=1:  %s\n  workers=32: %s",
				sequential[i].Name, s, p)
		}
	}
}
