// Documentation gates, run by the CI docs job:
//
//   - TestDocsRelativeLinks walks every markdown file in the repo root, docs/
//     and examples/ and fails on relative links (or #fragment anchors into
//     this repo's files) that point at nothing — so a renamed doc or section
//     cannot silently orphan its references.
//   - TestGodocExportedIdentifiers parses every non-test file under pkg/...
//     and fails on exported identifiers without a doc comment — the public
//     API surface must stay fully documented.
package mavbench_test

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// docFiles returns the markdown files the link checker covers: the repo
// root's top-level *.md plus everything under docs/ and examples/.
func docFiles(t *testing.T) []string {
	t.Helper()
	var files []string
	root, err := os.ReadDir(".")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range root {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".md") {
			files = append(files, e.Name())
		}
	}
	for _, dir := range []string{"docs", "examples"} {
		err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() && strings.HasSuffix(path, ".md") {
				files = append(files, path)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	return files
}

// mdLink matches inline markdown links [text](target). Images and reference
// definitions are rare enough here that the inline form is the contract.
var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// mdHeading matches ATX headings, whose GitHub anchor slugs the checker
// reproduces (lowercase, spaces to dashes, punctuation dropped).
var mdHeading = regexp.MustCompile(`(?m)^#{1,6}\s+(.+)$`)

var slugStrip = regexp.MustCompile(`[^a-z0-9 _-]`)

func headingSlug(h string) string {
	s := strings.ToLower(strings.TrimSpace(h))
	s = slugStrip.ReplaceAllString(s, "")
	return strings.ReplaceAll(s, " ", "-")
}

func markdownAnchors(content string) map[string]bool {
	anchors := map[string]bool{}
	for _, m := range mdHeading.FindAllStringSubmatch(content, -1) {
		anchors[headingSlug(m[1])] = true
	}
	return anchors
}

func TestDocsRelativeLinks(t *testing.T) {
	// Anchor sets per markdown file, loaded lazily for fragment checks.
	anchorCache := map[string]map[string]bool{}
	anchorsOf := func(path string) map[string]bool {
		if a, ok := anchorCache[path]; ok {
			return a
		}
		buf, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("reading %s for anchors: %v", path, err)
		}
		a := markdownAnchors(string(buf))
		anchorCache[path] = a
		return a
	}

	checked := 0
	for _, file := range docFiles(t) {
		buf, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		content := string(buf)
		for _, m := range mdLink.FindAllStringSubmatch(content, -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
				continue // external; availability is not this test's business
			}
			checked++
			path, frag, _ := strings.Cut(target, "#")
			resolved := file // pure-fragment links point into their own file
			if path != "" {
				resolved = filepath.Join(filepath.Dir(file), path)
				if _, err := os.Stat(resolved); err != nil {
					t.Errorf("%s: broken relative link %q (%v)", file, target, err)
					continue
				}
			}
			if frag != "" && strings.HasSuffix(resolved, ".md") {
				if !anchorsOf(resolved)[frag] {
					t.Errorf("%s: link %q points at a heading %q that %s does not have",
						file, target, frag, resolved)
				}
			}
		}
	}
	if checked == 0 {
		t.Fatal("link checker matched no relative links; the markdown scan is broken")
	}
	t.Logf("checked %d relative links across %d files", checked, len(docFiles(t)))
}

// publicPackages returns every directory under pkg/ containing Go files.
func publicPackages(t *testing.T) []string {
	t.Helper()
	dirs := map[string]bool{}
	err := filepath.WalkDir("pkg", func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			dirs[filepath.Dir(path)] = true
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for d := range dirs {
		out = append(out, d)
	}
	return out
}

// exportedReceiver reports whether fn is a plain function or a method whose
// receiver type is itself exported.
func exportedReceiver(fn *ast.FuncDecl) bool {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return true
	}
	typ := fn.Recv.List[0].Type
	if star, ok := typ.(*ast.StarExpr); ok {
		typ = star.X
	}
	if idx, ok := typ.(*ast.IndexExpr); ok { // generic receiver T[P]
		typ = idx.X
	}
	ident, ok := typ.(*ast.Ident)
	return ok && ident.IsExported()
}

func TestGodocExportedIdentifiers(t *testing.T) {
	var missing []string
	report := func(fset *token.FileSet, pos token.Pos, kind, name string) {
		p := fset.Position(pos)
		missing = append(missing, fmt.Sprintf("%s:%d: exported %s %s has no doc comment", p.Filename, p.Line, kind, name))
	}

	for _, dir := range publicPackages(t) {
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.ParseComments)
		if err != nil {
			t.Fatalf("parsing %s: %v", dir, err)
		}
		for _, pkg := range pkgs {
			for _, file := range pkg.Files {
				for _, decl := range file.Decls {
					switch d := decl.(type) {
					case *ast.FuncDecl:
						if d.Name.IsExported() && d.Doc.Text() == "" && exportedReceiver(d) {
							// Methods count when the receiver is exported:
							// an exported method on an unexported type is
							// only reachable through interfaces, not godoc.
							report(fset, d.Pos(), "func", d.Name.Name)
						}
					case *ast.GenDecl:
						for _, spec := range d.Specs {
							switch s := spec.(type) {
							case *ast.TypeSpec:
								if s.Name.IsExported() && d.Doc.Text() == "" && s.Doc.Text() == "" && s.Comment.Text() == "" {
									report(fset, s.Pos(), "type", s.Name.Name)
								}
							case *ast.ValueSpec:
								for _, name := range s.Names {
									if name.IsExported() && d.Doc.Text() == "" && s.Doc.Text() == "" && s.Comment.Text() == "" {
										report(fset, name.Pos(), "const/var", name.Name)
									}
								}
							}
						}
					}
				}
			}
		}
	}
	if len(missing) > 0 {
		t.Errorf("%d exported identifiers under pkg/ lack doc comments:\n%s",
			len(missing), strings.Join(missing, "\n"))
	}
}
