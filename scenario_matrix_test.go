// Scenario-matrix smoke harness: one short mission per (workload × difficulty
// preset) tier, pinned to a committed manifest of spec hashes and mission
// outcomes. The CI scenario-matrix job runs exactly this test; it guards two
// things the golden traces alone cannot:
//
//   - zero failed runs: every cell of the matrix must complete without an
//     engine error at every difficulty grade (mission failure — a collision
//     in a dense world — is a legitimate outcome and is pinned, but a crash,
//     validation error or panic is not);
//   - stable content addresses: the Spec.Hash of every cell is pinned, so an
//     accidental change to the spec canonicalization (which would silently
//     invalidate every shared disk store and fleet dedup key) fails here
//     with a readable diff.
//
// Regenerate (only when intentionally changing the spec schema or the
// scenario grading) with:
//
//	go test -run TestScenarioMatrix -update .
package mavbench_test

import (
	"encoding/json"
	"os"
	"testing"

	"mavbench/pkg/mavbench"
)

const matrixManifestPath = "testdata/scenario_matrix.json"

// matrixCell pins one (workload, scenario) combination.
type matrixCell struct {
	Workload string `json:"workload"`
	Scenario string `json:"scenario"`
	// Vehicles is the fleet size of a swarm cell (omitted for the classic
	// single-drone cells, matching the spec's canonical form).
	Vehicles int    `json:"vehicles,omitempty"`
	SpecHash string `json:"spec_hash"`
	// Success records the pinned mission outcome (collisions in dense
	// worlds legitimately fail missions; that outcome must be stable, not
	// hidden).
	Success bool `json:"success"`
}

// workloadFamilies maps every workload to its home environment family, the
// one its difficulty tiers grade.
var workloadFamilies = map[string]string{
	"scanning":           "farm",
	"package_delivery":   "urban",
	"mapping_3d":         "disaster",
	"search_and_rescue":  "disaster",
	"aerial_photography": "park",
}

// matrixSpecs builds the matrix: every workload at each difficulty preset of
// its home family, on small worlds with short missions.
func matrixSpecs(t testing.TB) ([]matrixCell, []mavbench.Spec) {
	t.Helper()
	var cells []matrixCell
	var specs []mavbench.Spec
	for _, info := range mavbench.Workloads() {
		if info.Name == "fleet_bench" {
			continue // test-only stub registered by bench_fleet_test.go, not a mission
		}
		family, ok := workloadFamilies[info.Name]
		if !ok {
			t.Fatalf("workload %s has no home family registered in the matrix harness", info.Name)
		}
		names := []string{family + "-sparse", family + "-default", family + "-dense"}
		// Frontier presets discovered by the adversarial scenario search join
		// the workload's home-family column, so their pinned knob vectors are
		// exercised by the same zero-failed-runs and stable-hash gates as the
		// graded tiers.
		for _, frontier := range mavbench.FrontierScenarios() {
			if frontier.Family == family {
				names = append(names, frontier.Name)
			}
		}
		for _, scenario := range names {
			spec, err := mavbench.NewSpec(info.Name,
				mavbench.WithScenario(scenario),
				mavbench.WithSeed(1234),
				mavbench.WithWorldScale(0.3),
				mavbench.WithLocalizer("ground_truth"),
				mavbench.WithMaxMissionTime(300),
			)
			if err != nil {
				t.Fatalf("building matrix spec %s × %s: %v", info.Name, scenario, err)
			}
			cells = append(cells, matrixCell{Workload: info.Name, Scenario: scenario, SpecHash: spec.Hash()})
			specs = append(specs, spec)
		}
	}
	// One three-drone swarm search-and-rescue cell per environment family:
	// the multi-vehicle runner must complete without engine errors in every
	// family's default scenario, and its fleet spec hashes must stay stable.
	for _, family := range []string{"disaster", "farm", "park", "urban"} {
		scenario := family + "-default"
		spec, err := mavbench.NewSpec("search_and_rescue",
			mavbench.WithScenario(scenario),
			mavbench.WithSeed(1234),
			mavbench.WithWorldScale(0.3),
			mavbench.WithLocalizer("ground_truth"),
			mavbench.WithMaxMissionTime(300),
			mavbench.WithVehicles(3),
		)
		if err != nil {
			t.Fatalf("building swarm matrix spec %s: %v", scenario, err)
		}
		cells = append(cells, matrixCell{
			Workload: "search_and_rescue", Scenario: scenario, Vehicles: 3, SpecHash: spec.Hash(),
		})
		specs = append(specs, spec)
	}
	return cells, specs
}

func TestScenarioMatrix(t *testing.T) {
	cells, specs := matrixSpecs(t)
	results, err := mavbench.NewCampaign(specs...).Collect(nil)
	if err != nil {
		t.Fatalf("scenario matrix had failed runs: %v", err)
	}
	for i, res := range results {
		if resErr := res.Err(); resErr != nil {
			t.Errorf("%s × %s failed: %v", cells[i].Workload, cells[i].Scenario, resErr)
			continue
		}
		cells[i].Success = res.Report.Success
	}
	if t.Failed() {
		return
	}

	if *updateGolden {
		buf, err := json.MarshalIndent(cells, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(matrixManifestPath, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s with %d cells", matrixManifestPath, len(cells))
		return
	}

	buf, err := os.ReadFile(matrixManifestPath)
	if err != nil {
		t.Fatalf("reading matrix manifest (regenerate with -update): %v", err)
	}
	var want []matrixCell
	if err := json.Unmarshal(buf, &want); err != nil {
		t.Fatalf("parsing %s: %v", matrixManifestPath, err)
	}
	if len(want) != len(cells) {
		t.Fatalf("manifest has %d cells, matrix produced %d (regenerate with -update)", len(want), len(cells))
	}
	for i, cell := range cells {
		if cell != want[i] {
			t.Errorf("matrix cell %s × %s drifted:\n got: %+v\nwant: %+v",
				cell.Workload, cell.Scenario, cell, want[i])
		}
	}
}
