module mavbench

go 1.22
