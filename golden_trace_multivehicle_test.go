// Multi-vehicle golden-trace harness: pins swarm search-and-rescue,
// cooperative mapping and multi-drone delivery missions to exact fleet and
// per-drone metrics at a fixed seed, exactly as golden_trace_test.go pins the
// single-drone workloads. The fleet runner advances N deterministic engines
// in lockstep, so these values must match bit-for-bit at every worker count.
//
// Regenerate (only when intentionally changing fleet behaviour) with:
//
//	go test -run TestMultiVehicleGoldenTraces -update .
package mavbench_test

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"

	"mavbench/pkg/mavbench"
)

const mvGoldenPath = "testdata/golden_traces_multivehicle.json"

// mvTrace pins one fleet mission: the aggregate metrics plus the per-drone
// mission outcomes (full per-drone reports would bloat the golden file; the
// scalar triple below is enough to catch any behavioural drift, because every
// per-drone metric feeds one of the pinned aggregates).
type mvTrace struct {
	Name     string        `json:"name"`
	Spec     mavbench.Spec `json:"spec"`
	SpecHash string        `json:"spec_hash"`

	MissionTimeS           float64 `json:"mission_time_s"`
	FlightTimeS            float64 `json:"flight_time_s"`
	DistanceM              float64 `json:"distance_m"`
	TotalEnergyKJ          float64 `json:"total_energy_kj"`
	Success                bool    `json:"success"`
	FailureReason          string  `json:"failure_reason,omitempty"`
	InterVehicleCollisions float64 `json:"inter_vehicle_collisions"`

	VehicleMissionTimesS []float64 `json:"vehicle_mission_times_s"`
	VehicleDistancesM    []float64 `json:"vehicle_distances_m"`
	VehicleSuccess       []bool    `json:"vehicle_success"`
}

// mvGoldenSpecs builds the pinned fleet spec set: both coordinated workload
// variants (swarm SAR sectors, deconflicted delivery corridors) plus
// cooperative mapping, at two fleet sizes and across scenario families.
func mvGoldenSpecs(t testing.TB) []struct {
	name string
	spec mavbench.Spec
} {
	t.Helper()
	mk := func(name, workload string, vehicles int, opts ...mavbench.Option) struct {
		name string
		spec mavbench.Spec
	} {
		base := []mavbench.Option{
			mavbench.WithSeed(1234),
			mavbench.WithWorldScale(0.35),
			mavbench.WithMaxMissionTime(420),
			mavbench.WithVehicles(vehicles),
		}
		spec, err := mavbench.NewSpec(workload, append(base, opts...)...)
		if err != nil {
			t.Fatalf("building multi-vehicle golden spec %s: %v", name, err)
		}
		return struct {
			name string
			spec mavbench.Spec
		}{name, spec}
	}
	return []struct {
		name string
		spec mavbench.Spec
	}{
		mk("search_and_rescue/vehicles=3", "search_and_rescue", 3),
		mk("search_and_rescue/vehicles=2/scenario=urban-default", "search_and_rescue", 2,
			mavbench.WithScenario("urban-default")),
		mk("package_delivery/vehicles=2", "package_delivery", 2),
		mk("package_delivery/vehicles=3/scenario=urban-dense", "package_delivery", 3,
			mavbench.WithScenario("urban-dense")),
		mk("mapping_3d/vehicles=2", "mapping_3d", 2),
	}
}

func mvTraceFromResult(t testing.TB, name string, res mavbench.Result) mvTrace {
	t.Helper()
	tr := mvTrace{
		Name:                   name,
		Spec:                   res.Spec,
		SpecHash:               res.SpecHash,
		MissionTimeS:           res.Report.MissionTimeS,
		FlightTimeS:            res.Report.FlightTimeS,
		DistanceM:              res.Report.DistanceM,
		TotalEnergyKJ:          res.Report.TotalEnergyKJ,
		Success:                res.Report.Success,
		FailureReason:          res.Report.FailureReason,
		InterVehicleCollisions: res.Report.Counters["inter_vehicle_collisions"],
	}
	if len(res.VehicleReports) != res.Spec.Vehicles {
		t.Errorf("%s: got %d vehicle reports, want %d", name, len(res.VehicleReports), res.Spec.Vehicles)
	}
	for _, rep := range res.VehicleReports {
		tr.VehicleMissionTimesS = append(tr.VehicleMissionTimesS, rep.MissionTimeS)
		tr.VehicleDistancesM = append(tr.VehicleDistancesM, rep.DistanceM)
		tr.VehicleSuccess = append(tr.VehicleSuccess, rep.Success)
	}
	return tr
}

// runMVGoldenCampaign executes the fleet spec set at the given worker count.
func runMVGoldenCampaign(t testing.TB, workers int) []mvTrace {
	t.Helper()
	entries := mvGoldenSpecs(t)
	specs := make([]mavbench.Spec, len(entries))
	for i, e := range entries {
		specs[i] = e.spec
	}
	results, err := mavbench.NewCampaign(specs...).SetWorkers(workers).Collect(nil)
	if err != nil {
		t.Fatalf("multi-vehicle golden campaign failed: %v", err)
	}
	traces := make([]mvTrace, len(results))
	for i, res := range results {
		traces[i] = mvTraceFromResult(t, entries[i].name, res)
	}
	return traces
}

func mvTraceJSON(t testing.TB, tr mvTrace) string {
	t.Helper()
	buf, err := json.Marshal(tr)
	if err != nil {
		t.Fatal(err)
	}
	return string(buf)
}

func TestMultiVehicleGoldenTraces(t *testing.T) {
	got := runMVGoldenCampaign(t, 1)

	if *updateGolden {
		buf, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(mvGoldenPath, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s with %d traces", mvGoldenPath, len(got))
		return
	}

	buf, err := os.ReadFile(mvGoldenPath)
	if err != nil {
		t.Fatalf("reading multi-vehicle golden file (regenerate with -update): %v", err)
	}
	var want []mvTrace
	if err := json.Unmarshal(buf, &want); err != nil {
		t.Fatalf("parsing %s: %v", mvGoldenPath, err)
	}
	if len(want) != len(got) {
		t.Fatalf("golden file has %d traces, harness produced %d (regenerate with -update)", len(want), len(got))
	}
	for i := range got {
		if g, w := mvTraceJSON(t, got[i]), mvTraceJSON(t, want[i]); g != w {
			t.Errorf("fleet trace %q diverged from golden:\n got: %s\nwant: %s", got[i].Name, g, w)
		}
	}
}

// TestMultiVehicleWorkerInvariance re-runs the fleet campaign on a full-width
// pool and requires bit-identical traces: fleet lockstep must not leak any
// scheduling dependence, exactly like the single-drone contract.
func TestMultiVehicleWorkerInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	sequential := runMVGoldenCampaign(t, 1)
	parallel := runMVGoldenCampaign(t, runtime.GOMAXPROCS(0))
	for i := range sequential {
		if s, p := mvTraceJSON(t, sequential[i]), mvTraceJSON(t, parallel[i]); s != p {
			t.Errorf("fleet trace %q differs across worker counts:\n  workers=1: %s\n  workers=N: %s",
				sequential[i].Name, s, p)
		}
	}
}

// TestVehiclesOneEqualsLegacy requires that an explicit WithVehicles(1) is
// indistinguishable from never mentioning vehicles at all: same canonical
// spec, same hash, and a byte-identical full Result JSON. This is the
// single-drone bit-identity contract of the fleet feature.
func TestVehiclesOneEqualsLegacy(t *testing.T) {
	legacy, err := mavbench.NewSpec("package_delivery",
		mavbench.WithSeed(1234), mavbench.WithWorldScale(0.3),
		mavbench.WithLocalizer("ground_truth"), mavbench.WithMaxMissionTime(300))
	if err != nil {
		t.Fatal(err)
	}
	one, err := mavbench.NewSpec("package_delivery",
		mavbench.WithSeed(1234), mavbench.WithWorldScale(0.3),
		mavbench.WithLocalizer("ground_truth"), mavbench.WithMaxMissionTime(300),
		mavbench.WithVehicles(1))
	if err != nil {
		t.Fatal(err)
	}
	if legacy.Hash() != one.Hash() {
		t.Fatalf("WithVehicles(1) changed the spec hash: %s vs %s", legacy.Hash(), one.Hash())
	}
	if one.Canonical().Vehicles != 0 {
		t.Errorf("canonical form of vehicles=1 should be 0, got %d", one.Canonical().Vehicles)
	}

	resLegacy, err := mavbench.Run(nil, legacy)
	if err != nil {
		t.Fatal(err)
	}
	resOne, err := mavbench.Run(nil, one)
	if err != nil {
		t.Fatal(err)
	}
	if resOne.VehicleReports != nil {
		t.Errorf("vehicles=1 run produced VehicleReports; single-drone runs must not")
	}
	bufLegacy, err := json.Marshal(resLegacy)
	if err != nil {
		t.Fatal(err)
	}
	bufOne, err := json.Marshal(resOne)
	if err != nil {
		t.Fatal(err)
	}
	if string(bufLegacy) != string(bufOne) {
		t.Errorf("vehicles=1 result differs from legacy single-drone result:\nlegacy: %s\n  one:  %s", bufLegacy, bufOne)
	}
}

// TestVehicleWorldSharing pins the hash/cache split: fleets of every size
// share the world of the single-drone spec (equal WorldHash, cache hits on a
// fresh WorldCache) while their run identities stay distinct (ComputeHash and
// Spec.Hash differ per fleet size).
func TestVehicleWorldSharing(t *testing.T) {
	mkSpec := func(vehicles int) mavbench.Spec {
		spec, err := mavbench.NewSpec("search_and_rescue",
			mavbench.WithSeed(1234), mavbench.WithWorldScale(0.3),
			mavbench.WithLocalizer("ground_truth"), mavbench.WithMaxMissionTime(240),
			mavbench.WithVehicles(vehicles))
		if err != nil {
			t.Fatal(err)
		}
		return spec
	}
	single, duo, trio := mkSpec(1), mkSpec(2), mkSpec(3)
	if single.WorldHash() != duo.WorldHash() || duo.WorldHash() != trio.WorldHash() {
		t.Fatalf("WorldHash must not depend on fleet size: %s / %s / %s",
			single.WorldHash(), duo.WorldHash(), trio.WorldHash())
	}
	if single.ComputeHash() == duo.ComputeHash() || duo.ComputeHash() == trio.ComputeHash() {
		t.Errorf("ComputeHash must distinguish fleet sizes")
	}
	if single.Hash() == duo.Hash() || duo.Hash() == trio.Hash() {
		t.Errorf("Spec.Hash must distinguish fleet sizes")
	}

	// Paired-seed world sharing in action: one cache, three fleet sizes, one
	// world build. (The drones of one fleet clone the cached world further,
	// which never touches the cache.)
	wc := mavbench.NewWorldCache()
	if _, err := mavbench.NewCampaign(single, duo, trio).SetWorkers(1).SetWorldCache(wc).Collect(nil); err != nil {
		t.Fatal(err)
	}
	st := wc.Stats()
	if st.Misses != 1 {
		t.Errorf("world cache built %d worlds for 3 fleet sizes, want 1", st.Misses)
	}
	if st.Hits != 2 {
		t.Errorf("world cache served %d hits, want 2", st.Hits)
	}
}
