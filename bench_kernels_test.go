// Kernel benchmark suite: octomap insertion throughput, collision-check and
// planner query latency, and the end-to-end sweep, each measured against a
// frozen copy of the seed's pre-optimisation implementation ("legacy") so the
// speedup of the chunked voxel map and the spatial-index planners stays
// visible — and regressable — forever.
//
// The legacy implementations in this file are deliberately verbatim copies of
// the seed's hash-map octomap and O(n²)/O(n) planners. They are test-only
// reference baselines; do not "improve" them.
//
// TestEmitBenchJSON (gated by MAVBENCH_BENCH_JSON=1) runs the suite
// programmatically and writes machine-readable BENCH_octomap.json,
// BENCH_planning.json and BENCH_sweep.json at the repository root — or under
// MAVBENCH_BENCH_DIR when set, which is how CI generates a fresh run to gate
// against the committed baselines with cmd/mavbench-benchdiff:
//
//	MAVBENCH_BENCH_JSON=1 go test -run TestEmitBenchJSON -v .
//	MAVBENCH_BENCH_JSON=1 MAVBENCH_BENCH_DIR=/tmp/bench go test -run TestEmitBenchJSON -v .
package mavbench_test

import (
	"container/heap"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"mavbench/internal/geom"
	"mavbench/internal/octomap"
	"mavbench/internal/planning"
)

// ---------------------------------------------------------------------------
// Synthetic sensor scans shared by the octomap benchmarks.

// benchScans builds a deterministic set of depth-camera-like scans: the
// sensor moves along a diagonal while observing a wall grid, so rays carve
// overlapping free-space corridors exactly like a mission's perception
// stream.
func benchScans(n int) (origins []geom.Vec3, scans [][]geom.Vec3) {
	rng := rand.New(rand.NewSource(42))
	for s := 0; s < n; s++ {
		t := float64(s) / float64(n)
		origin := geom.V3(-30+60*t, -20+40*t, 5+2*math.Sin(6*t))
		var pts []geom.Vec3
		for i := 0; i < 24; i++ {
			for j := 0; j < 18; j++ {
				dir := geom.V3(1, (float64(i)-12)/16, (float64(j)-9)/20).Unit()
				depth := 8 + 10*rng.Float64()
				pts = append(pts, origin.Add(dir.Scale(depth)))
			}
		}
		origins = append(origins, origin)
		scans = append(scans, pts)
	}
	return origins, scans
}

func benchBounds() geom.AABB {
	return geom.NewAABB(geom.V3(-50, -50, -5), geom.V3(50, 50, 25))
}

// pointCloudInserter is the insertion surface shared by the chunked map and
// the legacy reference.
type pointCloudInserter interface {
	InsertPointCloud(origin geom.Vec3, points []geom.Vec3, maxRange float64)
}

func runOctomapInsertBench(b *testing.B, fresh func() pointCloudInserter) {
	origins, scans := benchScans(32)
	pointsPerScan := len(scans[0])
	b.ResetTimer()
	var m pointCloudInserter
	for i := 0; i < b.N; i++ {
		if i%len(scans) == 0 {
			// Fresh map every full sweep so steady-state density (not
			// unbounded accumulation) is what gets measured.
			b.StopTimer()
			m = fresh()
			b.StartTimer()
		}
		m.InsertPointCloud(origins[i%len(scans)], scans[i%len(scans)], 20)
	}
	b.ReportMetric(float64(pointsPerScan)*float64(b.N)/b.Elapsed().Seconds(), "points/s")
}

func BenchmarkOctomapInsert(b *testing.B) {
	for _, res := range []float64{0.15, 0.80} {
		res := res
		b.Run(fmt.Sprintf("chunked/res=%.2f", res), func(b *testing.B) {
			runOctomapInsertBench(b, func() pointCloudInserter { return octomap.New(res, benchBounds()) })
		})
		b.Run(fmt.Sprintf("legacy/res=%.2f", res), func(b *testing.B) {
			runOctomapInsertBench(b, func() pointCloudInserter { return newLegacyMap(res, benchBounds()) })
		})
	}
}

// collisionMap builds an observed map with scattered column obstacles, the
// shape the planners sweep against.
func buildCollisionMaps(res float64) (*octomap.Map, *legacyMap) {
	m := octomap.New(res, benchBounds())
	lm := newLegacyMap(res, benchBounds())
	origins, scans := benchScans(16)
	for i := range scans {
		m.InsertPointCloud(origins[i], scans[i], 20)
		lm.InsertPointCloud(origins[i], scans[i], 20)
	}
	return m, lm
}

func runCollisionBench(b *testing.B, sphere func(p geom.Vec3, radius float64) bool, segment func(a, b geom.Vec3, radius float64) bool) {
	rng := rand.New(rand.NewSource(7))
	var probes []geom.Vec3
	for i := 0; i < 256; i++ {
		probes = append(probes, geom.V3(-30+60*rng.Float64(), -20+40*rng.Float64(), 2+8*rng.Float64()))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := probes[i%len(probes)]
		q := probes[(i+17)%len(probes)]
		sphere(p, 0.5)
		segment(p, q, 0.5)
	}
}

func BenchmarkCollisionCheck(b *testing.B) {
	m, lm := buildCollisionMaps(0.20)
	b.Run("chunked", func(b *testing.B) {
		runCollisionBench(b,
			func(p geom.Vec3, r float64) bool { return m.CollidesSphere(p, r, false) },
			func(p, q geom.Vec3, r float64) bool { return m.SegmentCollides(p, q, r, false) })
	})
	b.Run("legacy", func(b *testing.B) {
		runCollisionBench(b,
			func(p geom.Vec3, r float64) bool { return lm.CollidesSphere(p, r, false) },
			func(p, q geom.Vec3, r float64) bool { return lm.SegmentCollides(p, q, r, false) })
	})
}

// ---------------------------------------------------------------------------
// Planner query benchmarks: current (spatial-index) planners on the chunked
// map versus the seed's planners on the seed's map.

func plannerRequest(seed int64) planning.Request {
	return planning.Request{
		Start: geom.V3(-28, -18, 5),
		// The goal clears the benchmark map's diagonal wall band, so every
		// planner finds a path: the benchmark measures realistic mission
		// planning latency, not just budget exhaustion.
		Goal:          geom.V3(28, 18, 12),
		Bounds:        benchBounds(),
		Radius:        0.5,
		GoalTolerance: 1.5,
		MaxIterations: 6000,
		StepSize:      3,
		Seed:          seed,
	}
}

func runPlannerBench(b *testing.B, plan func(req planning.Request) planning.Result) {
	found := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := plan(plannerRequest(int64(1000 + i%8)))
		if res.Found {
			found++
		}
	}
	b.ReportMetric(float64(found)/float64(b.N), "found_rate")
}

func BenchmarkPlannerQuery(b *testing.B) {
	m, lm := buildCollisionMaps(0.20)
	current := map[string]planning.Planner{
		"rrt":         &planning.RRT{},
		"rrt_connect": &planning.RRTConnect{},
		"prm":         &planning.PRM{},
	}
	legacy := map[string]func(req planning.Request, c planning.CollisionChecker) planning.Result{
		"rrt":         legacyRRTPlan,
		"rrt_connect": legacyRRTConnectPlan,
		"prm":         legacyPRMPlan,
	}
	for _, name := range []string{"rrt", "rrt_connect", "prm"} {
		name := name
		b.Run(name+"/current", func(b *testing.B) {
			runPlannerBench(b, func(req planning.Request) planning.Result {
				return current[name].Plan(req, planning.NewMapChecker(m, benchBounds().Min.Z+0.8, benchBounds().Max.Z-0.5))
			})
		})
		b.Run(name+"/legacy", func(b *testing.B) {
			runPlannerBench(b, func(req planning.Request) planning.Result {
				return legacy[name](req, newLegacyMapChecker(lm, benchBounds().Min.Z+0.8, benchBounds().Max.Z-0.5))
			})
		})
	}
}

// TestPlannersMatchLegacy pins the planner rewrite to the seed's behaviour
// beyond the golden traces: on a shared map, every planner must return
// exactly the path, iteration count and collision-check count the seed's
// brute-force implementation returns, across seeds.
func TestPlannersMatchLegacy(t *testing.T) {
	m, lm := buildCollisionMaps(0.20)
	current := map[string]planning.Planner{
		"rrt":         &planning.RRT{},
		"rrt_connect": &planning.RRTConnect{},
		"prm":         &planning.PRM{},
	}
	legacy := map[string]func(req planning.Request, c planning.CollisionChecker) planning.Result{
		"rrt":         legacyRRTPlan,
		"rrt_connect": legacyRRTConnectPlan,
		"prm":         legacyPRMPlan,
	}
	for name := range current {
		for seed := int64(1); seed <= 4; seed++ {
			// A lighter budget than the benchmark request: the legacy PRM's
			// O(n²) scan at full budget would dominate the test suite's
			// runtime without pinning anything extra. The in-band goal is
			// hard to reach, so this also pins the planners' failure paths.
			req := plannerRequest(seed)
			req.Goal = geom.V3(28, 18, 5)
			req.MaxIterations = 2000
			wreq := req
			got := current[name].Plan(req, planning.NewMapChecker(m, benchBounds().Min.Z+0.8, benchBounds().Max.Z-0.5))
			want := legacy[name](wreq, newLegacyMapChecker(lm, benchBounds().Min.Z+0.8, benchBounds().Max.Z-0.5))
			if got.Found != want.Found || got.Iterations != want.Iterations || got.Checks != want.Checks {
				t.Fatalf("%s seed %d: (found=%v it=%d checks=%d) diverged from legacy (found=%v it=%d checks=%d)",
					name, seed, got.Found, got.Iterations, got.Checks, want.Found, want.Iterations, want.Checks)
			}
			if len(got.Path.Waypoints) != len(want.Path.Waypoints) {
				t.Fatalf("%s seed %d: path length %d != legacy %d", name, seed, len(got.Path.Waypoints), len(want.Path.Waypoints))
			}
			for i := range got.Path.Waypoints {
				if got.Path.Waypoints[i] != want.Path.Waypoints[i] {
					t.Fatalf("%s seed %d: waypoint %d %v != legacy %v", name, seed, i, got.Path.Waypoints[i], want.Path.Waypoints[i])
				}
			}
		}
	}
}

// ---------------------------------------------------------------------------
// BENCH_*.json emission.

type benchEntry struct {
	Name     string             `json:"name"`
	NsPerOp  float64            `json:"ns_per_op"`
	Ops      int                `json:"ops"`
	Metrics  map[string]float64 `json:"metrics,omitempty"`
	SpeedupX float64            `json:"speedup_vs_legacy_x,omitempty"`
}

type benchFile struct {
	Suite       string       `json:"suite"`
	Description string       `json:"description"`
	GoVersion   string       `json:"go_version"`
	GOOS        string       `json:"goos"`
	GOARCH      string       `json:"goarch"`
	CPUs        int          `json:"cpus"`
	Entries     []benchEntry `json:"entries"`
}

func runBench(name string, fn func(b *testing.B)) benchEntry {
	r := testing.Benchmark(fn)
	e := benchEntry{Name: name, NsPerOp: float64(r.T.Nanoseconds()) / float64(r.N), Ops: r.N}
	if len(r.Extra) > 0 {
		e.Metrics = map[string]float64{}
		for k, v := range r.Extra {
			e.Metrics[k] = v
		}
	}
	return e
}

func writeBenchFile(t *testing.T, path, suite, desc string, entries []benchEntry) {
	if dir := os.Getenv("MAVBENCH_BENCH_DIR"); dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		path = filepath.Join(dir, path)
	}
	f := benchFile{
		Suite:       suite,
		Description: desc,
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		CPUs:        runtime.NumCPU(),
		Entries:     entries,
	}
	buf, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s (%d entries)", path, len(entries))
}

// pairSpeedups fills SpeedupX on every ".../current" or ".../chunked" entry
// from its ".../legacy" sibling.
func pairSpeedups(entries []benchEntry) {
	byName := map[string]float64{}
	for _, e := range entries {
		byName[e.Name] = e.NsPerOp
	}
	for i, e := range entries {
		var legacyName string
		switch {
		case len(e.Name) > 8 && e.Name[len(e.Name)-8:] == "/current":
			legacyName = e.Name[:len(e.Name)-8] + "/legacy"
		case hasPrefixSeg(e.Name, "chunked"):
			legacyName = "legacy" + e.Name[len("chunked"):]
		default:
			continue
		}
		if legacyNs, ok := byName[legacyName]; ok && e.NsPerOp > 0 {
			entries[i].SpeedupX = legacyNs / e.NsPerOp
		}
	}
}

func hasPrefixSeg(name, seg string) bool {
	return len(name) >= len(seg) && name[:len(seg)] == seg && (len(name) == len(seg) || name[len(seg)] == '/')
}

// TestEmitBenchJSON regenerates the committed BENCH_*.json files. Gated by an
// environment variable because it re-runs every kernel benchmark (a couple of
// minutes); see docs/PERFORMANCE.md.
func TestEmitBenchJSON(t *testing.T) {
	if os.Getenv("MAVBENCH_BENCH_JSON") == "" {
		t.Skip("set MAVBENCH_BENCH_JSON=1 to regenerate BENCH_*.json")
	}

	// Octomap suite.
	var octoEntries []benchEntry
	for _, res := range []float64{0.15, 0.80} {
		res := res
		octoEntries = append(octoEntries,
			runBench(fmt.Sprintf("chunked/insert/res=%.2f", res), func(b *testing.B) {
				runOctomapInsertBench(b, func() pointCloudInserter { return octomap.New(res, benchBounds()) })
			}),
			runBench(fmt.Sprintf("legacy/insert/res=%.2f", res), func(b *testing.B) {
				runOctomapInsertBench(b, func() pointCloudInserter { return newLegacyMap(res, benchBounds()) })
			}),
		)
	}
	m, lm := buildCollisionMaps(0.20)
	octoEntries = append(octoEntries,
		runBench("chunked/collision_check", func(b *testing.B) {
			runCollisionBench(b,
				func(p geom.Vec3, r float64) bool { return m.CollidesSphere(p, r, false) },
				func(p, q geom.Vec3, r float64) bool { return m.SegmentCollides(p, q, r, false) })
		}),
		runBench("legacy/collision_check", func(b *testing.B) {
			runCollisionBench(b,
				func(p geom.Vec3, r float64) bool { return lm.CollidesSphere(p, r, false) },
				func(p, q geom.Vec3, r float64) bool { return lm.SegmentCollides(p, q, r, false) })
		}),
	)
	pairSpeedups(octoEntries)
	writeBenchFile(t, "BENCH_octomap.json", "octomap",
		"Chunked-dense voxel map vs the seed's per-voxel hash map: point-cloud insertion throughput and sphere/segment collision queries.",
		octoEntries)

	// Planning suite.
	var planEntries []benchEntry
	current := map[string]planning.Planner{
		"rrt":         &planning.RRT{},
		"rrt_connect": &planning.RRTConnect{},
		"prm":         &planning.PRM{},
	}
	legacy := map[string]func(req planning.Request, c planning.CollisionChecker) planning.Result{
		"rrt":         legacyRRTPlan,
		"rrt_connect": legacyRRTConnectPlan,
		"prm":         legacyPRMPlan,
	}
	for _, name := range []string{"rrt", "rrt_connect", "prm"} {
		name := name
		planEntries = append(planEntries,
			runBench("plan/"+name+"/current", func(b *testing.B) {
				runPlannerBench(b, func(req planning.Request) planning.Result {
					return current[name].Plan(req, planning.NewMapChecker(m, benchBounds().Min.Z+0.8, benchBounds().Max.Z-0.5))
				})
			}),
			runBench("plan/"+name+"/legacy", func(b *testing.B) {
				runPlannerBench(b, func(req planning.Request) planning.Result {
					return legacy[name](req, newLegacyMapChecker(lm, benchBounds().Min.Z+0.8, benchBounds().Max.Z-0.5))
				})
			}),
		)
	}
	pairSpeedups(planEntries)
	writeBenchFile(t, "BENCH_planning.json", "planning",
		"Spatial-index planners (grid nearest-neighbour + radius candidates, memoised segment checks) vs the seed's O(n^2)/O(n) scans, on identical cluttered maps.",
		planEntries)

	// End-to-end sweep suite: the golden campaign at 1 worker and N workers
	// (a single entry on single-CPU machines). Each count is measured
	// best-of-3: the fastest pass reflects the engine's real throughput, while
	// a single sample on a noisy shared machine can swing ±10% from GC and
	// scheduler interference — too flaky for the runs_per_sec floor gate.
	workerCounts := []int{1}
	if n := runtime.GOMAXPROCS(0); n > 1 {
		workerCounts = append(workerCounts, n)
	}
	var sweepEntries []benchEntry
	for _, workers := range workerCounts {
		workers := workers
		var best time.Duration
		var traces []goldenTrace
		for pass := 0; pass < 3; pass++ {
			start := time.Now()
			traces = runGoldenCampaign(t, workers)
			if elapsed := time.Since(start); pass == 0 || elapsed < best {
				best = elapsed
			}
		}
		sweepEntries = append(sweepEntries, benchEntry{
			Name:    fmt.Sprintf("golden_campaign/workers=%d", workers),
			NsPerOp: float64(best.Nanoseconds()),
			Ops:     1,
			Metrics: map[string]float64{
				"runs":         float64(len(traces)),
				"runs_per_sec": float64(len(traces)) / best.Seconds(),
				"wall_seconds": best.Seconds(),
			},
		})
	}
	writeBenchFile(t, "BENCH_sweep.json", "sweep",
		"End-to-end golden campaign (24 missions across all five workloads plus kernel-stressing variants) wall time, best of 3 passes, sequential vs one worker per CPU.",
		sweepEntries)
}

// ---------------------------------------------------------------------------
// Legacy reference implementations (frozen copies of the seed's kernels).

const (
	legacyLogOddsHit  = 0.85
	legacyLogOddsMiss = -0.4
	legacyLogOddsMin  = -2.0
	legacyLogOddsMax  = 3.5
	legacyOccupied    = 0.0
)

type legacyVoxelKey struct{ X, Y, Z int32 }

// legacyMap is the seed's hash-map-of-voxels occupancy map.
type legacyMap struct {
	resolution float64
	bounds     geom.AABB
	leaves     map[legacyVoxelKey]float64
}

func newLegacyMap(resolution float64, bounds geom.AABB) *legacyMap {
	return &legacyMap{resolution: resolution, bounds: bounds, leaves: map[legacyVoxelKey]float64{}}
}

func (m *legacyMap) key(p geom.Vec3) legacyVoxelKey {
	return legacyVoxelKey{
		X: int32(math.Floor(p.X / m.resolution)),
		Y: int32(math.Floor(p.Y / m.resolution)),
		Z: int32(math.Floor(p.Z / m.resolution)),
	}
}

func (m *legacyMap) update(k legacyVoxelKey, delta float64) {
	v := m.leaves[k] + delta
	if v > legacyLogOddsMax {
		v = legacyLogOddsMax
	}
	if v < legacyLogOddsMin {
		v = legacyLogOddsMin
	}
	m.leaves[k] = v
}

func (m *legacyMap) MarkOccupied(p geom.Vec3) {
	if !m.bounds.Contains(p) {
		return
	}
	m.update(m.key(p), legacyLogOddsHit)
}

func (m *legacyMap) MarkFree(p geom.Vec3) {
	if !m.bounds.Contains(p) {
		return
	}
	m.update(m.key(p), legacyLogOddsMiss)
}

func (m *legacyMap) InsertRay(origin, end geom.Vec3, maxRange float64) {
	dir := end.Sub(origin)
	dist := dir.Norm()
	if dist == 0 {
		return
	}
	truncated := false
	if maxRange > 0 && dist > maxRange {
		end = origin.Add(dir.Scale(maxRange / dist))
		dist = maxRange
		truncated = true
	}
	steps := int(dist/m.resolution) + 1
	for i := 0; i < steps; i++ {
		t := float64(i) / float64(steps)
		m.MarkFree(origin.Lerp(end, t))
	}
	if !truncated {
		m.MarkOccupied(end)
	}
}

func (m *legacyMap) InsertPointCloud(origin geom.Vec3, points []geom.Vec3, maxRange float64) {
	for _, p := range points {
		m.InsertRay(origin, p, maxRange)
	}
}

func (m *legacyMap) CollidesSphere(p geom.Vec3, radius float64, treatUnknownAsOccupied bool) bool {
	r := int(math.Ceil(radius/m.resolution)) + 1
	center := m.key(p)
	for dx := -r; dx <= r; dx++ {
		for dy := -r; dy <= r; dy++ {
			for dz := -r; dz <= r; dz++ {
				k := legacyVoxelKey{center.X + int32(dx), center.Y + int32(dy), center.Z + int32(dz)}
				vc := geom.Vec3{
					X: (float64(k.X) + 0.5) * m.resolution,
					Y: (float64(k.Y) + 0.5) * m.resolution,
					Z: (float64(k.Z) + 0.5) * m.resolution,
				}
				if vc.Dist(p) > radius+m.resolution*0.87 {
					continue
				}
				lo, ok := m.leaves[k]
				if !ok {
					if treatUnknownAsOccupied {
						return true
					}
					continue
				}
				if lo > legacyOccupied {
					return true
				}
			}
		}
	}
	return false
}

func (m *legacyMap) SegmentCollides(a, b geom.Vec3, radius float64, treatUnknownAsOccupied bool) bool {
	dist := a.Dist(b)
	steps := int(dist/(m.resolution*0.5)) + 1
	for i := 0; i <= steps; i++ {
		t := float64(i) / float64(steps)
		if m.CollidesSphere(a.Lerp(b, t), radius, treatUnknownAsOccupied) {
			return true
		}
	}
	return false
}

// legacyMapChecker is the seed's MapChecker (no segment memoisation).
type legacyMapChecker struct {
	m              *legacyMap
	floor, ceiling float64
	checks         int
}

func newLegacyMapChecker(m *legacyMap, floor, ceiling float64) *legacyMapChecker {
	return &legacyMapChecker{m: m, floor: floor, ceiling: ceiling}
}

func (c *legacyMapChecker) PointFree(p geom.Vec3, radius float64) bool {
	c.checks++
	if c.ceiling > c.floor && (p.Z < c.floor || p.Z > c.ceiling) {
		return false
	}
	return !c.m.CollidesSphere(p, radius, false)
}

func (c *legacyMapChecker) SegmentFree(a, b geom.Vec3, radius float64) bool {
	c.checks++
	if c.ceiling > c.floor {
		if a.Z < c.floor || a.Z > c.ceiling || b.Z < c.floor || b.Z > c.ceiling {
			return false
		}
	}
	return !c.m.SegmentCollides(a, b, radius, false)
}

func (c *legacyMapChecker) Checks() int { return c.checks }

// legacyNearest is the seed's brute-force nearest-node scan.
func legacyNearest(nodes []geom.Vec3, p geom.Vec3) int {
	best := 0
	bestD := math.Inf(1)
	for i, n := range nodes {
		if d := n.DistSq(p); d < bestD {
			bestD = d
			best = i
		}
	}
	return best
}

func legacySample(rng *rand.Rand, b geom.AABB, goal geom.Vec3, goalBias float64) geom.Vec3 {
	if rng.Float64() < goalBias {
		return goal
	}
	s := b.Size()
	return geom.Vec3{
		X: b.Min.X + rng.Float64()*s.X,
		Y: b.Min.Y + rng.Float64()*s.Y,
		Z: b.Min.Z + rng.Float64()*s.Z,
	}
}

func legacyTrace(nodes []geom.Vec3, parent []int, leaf int) planning.Path {
	var rev []geom.Vec3
	for i := leaf; i >= 0; i = parent[i] {
		rev = append(rev, nodes[i])
	}
	wps := make([]geom.Vec3, 0, len(rev))
	for i := len(rev) - 1; i >= 0; i-- {
		wps = append(wps, rev[i])
	}
	return planning.Path{Waypoints: wps}
}

// legacyRRTPlan is the seed's RRT with the O(n) nearest scan.
func legacyRRTPlan(req planning.Request, checker planning.CollisionChecker) planning.Result {
	res := planning.Result{PlannerName: "rrt"}
	if err := req.Validate(); err != nil {
		return res
	}
	goalBias := 0.1
	rng := rand.New(rand.NewSource(req.Seed))
	if !checker.PointFree(req.Start, req.Radius) {
		res.Checks = checker.Checks()
		return res
	}
	nodes := []geom.Vec3{req.Start}
	parent := []int{-1}
	goalIdx := -1
	for it := 0; it < req.MaxIterations; it++ {
		res.Iterations = it + 1
		sample := legacySample(rng, req.Bounds, req.Goal, goalBias)
		ni := legacyNearest(nodes, sample)
		from := nodes[ni]
		dir := sample.Sub(from)
		dist := dir.Norm()
		if dist < 1e-9 {
			continue
		}
		step := req.StepSize
		if dist < step {
			step = dist
		}
		to := from.Add(dir.Scale(step / dist))
		if !req.Bounds.Contains(to) {
			continue
		}
		if !checker.SegmentFree(from, to, req.Radius) {
			continue
		}
		nodes = append(nodes, to)
		parent = append(parent, ni)
		if to.Dist(req.Goal) <= req.GoalTolerance {
			goalIdx = len(nodes) - 1
			break
		}
		if to.Dist(req.Goal) <= req.StepSize*2 && checker.SegmentFree(to, req.Goal, req.Radius) {
			nodes = append(nodes, req.Goal)
			parent = append(parent, len(nodes)-2)
			goalIdx = len(nodes) - 1
			break
		}
	}
	res.Checks = checker.Checks()
	if goalIdx < 0 {
		return res
	}
	res.Found = true
	res.Path = legacyTrace(nodes, parent, goalIdx)
	return res
}

// legacyRRTConnectPlan is the seed's RRT-Connect with O(n) nearest scans.
func legacyRRTConnectPlan(req planning.Request, checker planning.CollisionChecker) planning.Result {
	res := planning.Result{PlannerName: "rrt_connect"}
	if err := req.Validate(); err != nil {
		return res
	}
	rng := rand.New(rand.NewSource(req.Seed))
	if !checker.PointFree(req.Start, req.Radius) || !checker.PointFree(req.Goal, req.Radius) {
		res.Checks = checker.Checks()
		return res
	}
	type tree struct {
		nodes  []geom.Vec3
		parent []int
	}
	a := &tree{nodes: []geom.Vec3{req.Start}, parent: []int{-1}}
	b := &tree{nodes: []geom.Vec3{req.Goal}, parent: []int{-1}}
	extend := func(t *tree, target geom.Vec3) (int, bool) {
		ni := legacyNearest(t.nodes, target)
		from := t.nodes[ni]
		dir := target.Sub(from)
		dist := dir.Norm()
		if dist < 1e-9 {
			return ni, true
		}
		step := req.StepSize
		reached := false
		if dist <= step {
			step = dist
			reached = true
		}
		to := from.Add(dir.Scale(step / dist))
		if !req.Bounds.Contains(to) || !checker.SegmentFree(from, to, req.Radius) {
			return -1, false
		}
		t.nodes = append(t.nodes, to)
		t.parent = append(t.parent, ni)
		return len(t.nodes) - 1, reached
	}
	for it := 0; it < req.MaxIterations; it++ {
		res.Iterations = it + 1
		sample := legacySample(rng, req.Bounds, req.Goal, 0.05)
		ai, _ := extend(a, sample)
		if ai < 0 {
			a, b = b, a
			continue
		}
		target := a.nodes[ai]
		for {
			bi, reached := extend(b, target)
			if bi < 0 {
				break
			}
			if reached {
				pa := legacyTrace(a.nodes, a.parent, ai)
				pb := legacyTrace(b.nodes, b.parent, bi)
				res.Found = true
				res.Path = legacySplice(pa, pb, a.nodes[0] == req.Start)
				res.Checks = checker.Checks()
				return res
			}
		}
		a, b = b, a
	}
	res.Checks = checker.Checks()
	return res
}

func legacySplice(pa, pb planning.Path, aIsStartTree bool) planning.Path {
	reverse := func(w []geom.Vec3) []geom.Vec3 {
		out := make([]geom.Vec3, len(w))
		for i := range w {
			out[i] = w[len(w)-1-i]
		}
		return out
	}
	var startSide, goalSide []geom.Vec3
	if aIsStartTree {
		startSide = pa.Waypoints
		goalSide = pb.Waypoints
	} else {
		startSide = pb.Waypoints
		goalSide = pa.Waypoints
	}
	joined := append(append([]geom.Vec3(nil), startSide...), reverse(goalSide)[1:]...)
	return planning.Path{Waypoints: joined}
}

// legacyPRMPlan is the seed's PRM+A* with the O(n²) neighbour scan.
func legacyPRMPlan(req planning.Request, checker planning.CollisionChecker) planning.Result {
	res := planning.Result{PlannerName: "prm"}
	if err := req.Validate(); err != nil {
		return res
	}
	k := 10
	maxConn := req.StepSize * 4
	rng := rand.New(rand.NewSource(req.Seed))
	if !checker.PointFree(req.Start, req.Radius) || !checker.PointFree(req.Goal, req.Radius) {
		res.Checks = checker.Checks()
		return res
	}
	sampleBudget := req.MaxIterations / 8
	if sampleBudget < 50 {
		sampleBudget = 50
	}
	nodes := []geom.Vec3{req.Start, req.Goal}
	for i := 0; i < sampleBudget; i++ {
		res.Iterations++
		s := legacySample(rng, req.Bounds, req.Goal, 0)
		if checker.PointFree(s, req.Radius) {
			nodes = append(nodes, s)
		}
	}
	type edge struct {
		to   int
		cost float64
	}
	adj := make([][]edge, len(nodes))
	for i := range nodes {
		type cand struct {
			j int
			d float64
		}
		var cands []cand
		for j := range nodes {
			if i == j {
				continue
			}
			d := nodes[i].Dist(nodes[j])
			if d <= maxConn {
				cands = append(cands, cand{j, d})
			}
		}
		for n := 0; n < k && n < len(cands); n++ {
			best := n
			for m := n + 1; m < len(cands); m++ {
				if cands[m].d < cands[best].d {
					best = m
				}
			}
			cands[n], cands[best] = cands[best], cands[n]
			j, d := cands[n].j, cands[n].d
			if checker.SegmentFree(nodes[i], nodes[j], req.Radius) {
				adj[i] = append(adj[i], edge{to: j, cost: d})
				adj[j] = append(adj[j], edge{to: i, cost: d})
			}
		}
	}
	const startIdx, goalIdx = 0, 1
	dist := make([]float64, len(nodes))
	prev := make([]int, len(nodes))
	closed := make([]bool, len(nodes))
	for i := range dist {
		dist[i] = math.Inf(1)
		prev[i] = -1
	}
	dist[startIdx] = 0
	pq := &legacyAstarQueue{}
	heap.Init(pq)
	heap.Push(pq, legacyAstarItem{node: startIdx, priority: nodes[startIdx].Dist(nodes[goalIdx])})
	for pq.Len() > 0 {
		item := heap.Pop(pq).(legacyAstarItem)
		u := item.node
		if closed[u] {
			continue
		}
		closed[u] = true
		if u == goalIdx {
			break
		}
		for _, e := range adj[u] {
			if closed[e.to] {
				continue
			}
			nd := dist[u] + e.cost
			if nd < dist[e.to] {
				dist[e.to] = nd
				prev[e.to] = u
				heap.Push(pq, legacyAstarItem{node: e.to, priority: nd + nodes[e.to].Dist(nodes[goalIdx])})
			}
		}
	}
	res.Checks = checker.Checks()
	if math.IsInf(dist[goalIdx], 1) {
		return res
	}
	var rev []geom.Vec3
	for i := goalIdx; i >= 0; i = prev[i] {
		rev = append(rev, nodes[i])
		if i == startIdx {
			break
		}
	}
	wps := make([]geom.Vec3, 0, len(rev))
	for i := len(rev) - 1; i >= 0; i-- {
		wps = append(wps, rev[i])
	}
	res.Found = true
	res.Path = planning.Path{Waypoints: wps}
	return res
}

type legacyAstarItem struct {
	node     int
	priority float64
}

type legacyAstarQueue []legacyAstarItem

func (q legacyAstarQueue) Len() int           { return len(q) }
func (q legacyAstarQueue) Less(i, j int) bool { return q[i].priority < q[j].priority }
func (q legacyAstarQueue) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *legacyAstarQueue) Push(x any)        { *q = append(*q, x.(legacyAstarItem)) }
func (q *legacyAstarQueue) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}
