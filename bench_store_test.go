// Storage subsystem benchmarks: world provisioning with and without the
// world cache, and the segment result store against the one-file-per-hash
// DiskStore it replaces for analytics workloads.
//
// The world-provisioning pair measures exactly the stage the cache
// accelerates — building a workload's world versus cloning a cached one —
// not end-to-end runs (the simulation itself dominates those and is
// unchanged). The warm entry's speedup_vs_legacy_x is warm-vs-cold within
// the same run, so the CI gate holds across differing runner hardware.
//
// TestEmitStoreBenchJSON (gated by MAVBENCH_BENCH_JSON=1, like
// TestEmitBenchJSON) writes BENCH_store.json for the CI regression gate:
//
//	MAVBENCH_BENCH_JSON=1 go test -run TestEmitStoreBenchJSON -v .
package mavbench_test

import (
	"fmt"
	"os"
	"testing"

	"mavbench/internal/core"
	"mavbench/internal/env"
	"mavbench/internal/geom"
	"mavbench/pkg/mavbench"
	"mavbench/pkg/mavbench/resultdb"
)

// storeBenchParams is the world the provisioning pair builds: the scanning
// workload at the scale the world-cache correctness tests pin.
func storeBenchParams(tb testing.TB) (core.Params, core.Workload) {
	tb.Helper()
	wl, err := core.Lookup("scanning")
	if err != nil {
		tb.Fatal(err)
	}
	p := core.Params{Workload: "scanning", Seed: 42, WorldScale: 0.3}.Normalize()
	return p, wl
}

// storeBenchResult fabricates the i-th stored result, hash included.
func storeBenchResult(i int) (string, mavbench.Result) {
	hash := fmt.Sprintf("%064x", i+1)
	return hash, mavbench.Result{
		SpecHash: hash,
		Spec: mavbench.Spec{
			Workload: []string{"scanning", "package_delivery", "mapping_3d"}[i%3],
			Scenario: "farm-default", Difficulty: 0.5,
			// Cores and freq vary on a different period than workload so
			// every (workload, cores) combination exists and range filters
			// always have matches.
			Cores: 2 + (i/3)%3, FreqGHz: 0.8 + 0.7*float64((i/9)%3),
			Seed: int64(i),
		},
		Platform: "TX2",
		Report:   mavbench.Report{Success: i%7 != 0, MissionTimeS: float64(i), TotalEnergyKJ: float64(i) / 10},
	}
}

// benchSegmentPrefill opens a segment store holding n records.
func benchSegmentPrefill(b *testing.B, n int) *resultdb.Store {
	b.Helper()
	s, err := resultdb.Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < n; i++ {
		hash, res := storeBenchResult(i)
		s.Put(hash, res)
	}
	return s
}

func TestEmitStoreBenchJSON(t *testing.T) {
	if os.Getenv("MAVBENCH_BENCH_JSON") == "" {
		t.Skip("set MAVBENCH_BENCH_JSON=1 to regenerate BENCH_*.json")
	}
	p, wl := storeBenchParams(t)

	cold := runBench("store/world_provision/cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := wl.World(p); err != nil {
				b.Fatal(err)
			}
		}
	})
	warm := runBench("store/world_provision/warm", func(b *testing.B) {
		wc := env.NewWorldCache()
		key := p.WorldHash()
		build := func() (*env.World, geom.Vec3, error) { return wl.World(p) }
		if _, _, err := wc.GetOrBuild(key, build); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := wc.GetOrBuild(key, build); err != nil {
				b.Fatal(err)
			}
		}
	})
	warm.SpeedupX = cold.NsPerOp / warm.NsPerOp
	if warm.SpeedupX < 2 {
		t.Errorf("warm world provisioning is only %.2fx cold, the cache must be >= 2x", warm.SpeedupX)
	}
	entries := []benchEntry{cold, warm}

	const prefill = 2048
	entries = append(entries,
		runBench("store/segment/put", func(b *testing.B) {
			s := benchSegmentPrefill(b, 0)
			defer s.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				hash, res := storeBenchResult(i)
				s.Put(hash, res)
			}
		}),
		runBench("store/segment/get", func(b *testing.B) {
			s := benchSegmentPrefill(b, prefill)
			defer s.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				hash, _ := storeBenchResult(i % prefill)
				if _, ok := s.Get(hash); !ok {
					b.Fatalf("miss on %s", hash)
				}
			}
		}),
		runBench("store/segment/query", func(b *testing.B) {
			s := benchSegmentPrefill(b, prefill)
			defer s.Close()
			q := resultdb.Query{Workload: "scanning", Cores: resultdb.AtLeast(3), OnlyOK: true, Limit: 100}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if len(s.Query(q)) == 0 {
					b.Fatal("query returned nothing")
				}
			}
		}),
		runBench("store/disk/put", func(b *testing.B) {
			s, err := mavbench.NewDiskStore(b.TempDir())
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				hash, res := storeBenchResult(i)
				s.Put(hash, res)
			}
		}),
		runBench("store/disk/get", func(b *testing.B) {
			s, err := mavbench.NewDiskStore(b.TempDir())
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < prefill; i++ {
				hash, res := storeBenchResult(i)
				s.Put(hash, res)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				hash, _ := storeBenchResult(i % prefill)
				if _, ok := s.Get(hash); !ok {
					b.Fatalf("miss on %s", hash)
				}
			}
		}),
	)

	writeBenchFile(t, "BENCH_store.json", "store",
		"Storage subsystem: world provisioning cold (build) vs warm (cached clone) for the scanning workload at scale 0.3, and segment-store vs DiskStore put/get plus indexed query over 2048 records. The warm entry's speedup factor is measured against cold within the same run.",
		entries)
}
